// Package errdrop is a lint fixture: every way to lose an error, and
// the allowlisted sinks that may keep chattering.
package errdrop

import (
	"fmt"
	"os"
	"strings"
)

func mayFail() error            { return nil }
func mayFailWith() (int, error) { return 0, nil }

// Bad: all three dropping shapes.
func Bad(f *os.File) {
	mayFail()             // want "error returned by mayFail unchecked"
	defer mayFail()       // want "error returned by mayFail dropped by defer"
	go mayFail()          // want "error returned by mayFail dropped by go statement"
	_ = mayFail()         // want "error discarded with blank assignment"
	_, _ = mayFailWith()  // want "error discarded with blank assignment"
	fmt.Fprintln(f, "hi") // want "error returned by fmt.Fprintln unchecked"
}

// Good: handled, propagated, or allowlisted.
func Good() error {
	if err := mayFail(); err != nil {
		return err
	}
	n, err := mayFailWith()
	if err != nil {
		return err
	}
	fmt.Println("count", n)             // stdout chatter: allowlisted
	fmt.Fprintln(os.Stderr, "progress") // std stream: allowlisted
	var b strings.Builder
	b.WriteString("never errors") // Builder: allowlisted
	_ = b.String()
	return nil
}
