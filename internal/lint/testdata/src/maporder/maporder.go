// Package maporder is a lint fixture: order-sensitive work inside
// range-over-map loops, plus every recognized safe idiom.
package maporder

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// BadAppend accumulates map keys and never sorts them.
func BadAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to \"keys\" inside range over map without a later sort"
	}
	return keys
}

// BadPrint writes output in iteration order.
func BadPrint(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "fmt.Printf inside range over map"
	}
}

// BadRNG consumes the deterministic stream in map order.
func BadRNG(m map[string]int, src *rng.Source) float64 {
	total := 0.0
	for range m {
		total += src.Float64() // want "RNG draw inside range over map"
	}
	return total
}

// BadSend feeds a channel in iteration order.
func BadSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want "channel send inside range over map"
	}
}

// BadWriter records rows in iteration order through a sink method.
type table struct{ rows [][]string }

func (t *table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

func BadTable(m map[string]int, t *table) {
	for k := range m {
		t.AddRow(k) // want "AddRow inside range over map"
	}
}

// GoodCollectSort is the blessed idiom: collect, then sort.
func GoodCollectSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GoodSortSlice also counts: any stdlib sort establishes the order.
func GoodSortSlice(m map[string]float64) []float64 {
	vals := make([]float64, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// GoodAggregate: order-independent reductions are never flagged.
func GoodAggregate(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v
	}
	return sum
}

// GoodMapToMap: writes keyed by the same keys commute.
func GoodMapToMap(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}
