// Package detrand is a lint fixture: every construct detrand must
// flag inside a simulation package, plus the allowed alternatives.
package detrand

import (
	"math/rand" // want "simulation package imports \"math/rand\""
	"os"
	"time"
)

// Bad: every ambient-entropy source the rule bans.
func Bad() float64 {
	t0 := time.Now()          // want "calls time.Now"
	elapsed := time.Since(t0) // want "calls time.Since"
	_ = os.Getenv("SEED")     // want "calls os.Getenv"
	return rand.Float64() + elapsed.Seconds()
}

// BadIndirect: taking the function value (not calling it) is still a
// wall-clock dependency.
var now = time.Now // want "calls time.Now"

// Good: deterministic work and simulated time are fine.
func Good(step int) float64 {
	const dt = 0.25e-3 // simulated control-interval seconds
	return float64(step) * dt
}
