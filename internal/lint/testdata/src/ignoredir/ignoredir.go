// Package ignoredir is a lint fixture for the //lint:ignore directive
// machinery itself: suppression on the same line and the line above,
// multi-rule directives, and the malformed shapes reported under the
// rule ID "ignore".
package ignoredir

// GoodSuppressedAbove: a violation silenced by the preceding line.
func GoodSuppressedAbove(a, b float64) bool {
	//lint:ignore floatcmp fixture: exact compare is the point here
	return a == b
}

// GoodSuppressedSameLine: a violation silenced by a trailing comment.
func GoodSuppressedSameLine(a, b float64) bool {
	return a != b //lint:ignore floatcmp fixture: exact compare is the point here
}

// GoodMultiRule: one directive may name several rules.
func GoodMultiRule(a, b float64) bool {
	//lint:ignore floatcmp,maporder fixture: both rules named
	return a == b
}

// BadStillFires: a directive for a different rule does not suppress.
func BadStillFires(a, b float64) bool {
	//lint:ignore maporder fixture: wrong rule, floatcmp still fires
	return a == b // want "floating-point == comparison"
}

//lint:ignore floatcmp
// want-above "malformed //lint:ignore directive"

//lint:ignore nosuchrule reason text
// want-above "unknown rule \"nosuchrule\""

// BadTooFar: a directive two lines up does not reach.
func BadTooFar(a, b float64) bool {
	//lint:ignore floatcmp fixture: too far away

	return a == b // want "floating-point == comparison"
}
