// Package ignoredir is a lint fixture for the //lint:ignore directive
// machinery itself: suppression on the same line and the line above,
// multi-rule directives, directives anchored to the opening line of a
// multi-line statement, and the malformed shapes reported under the
// rule ID "ignore".
package ignoredir

// GoodSuppressedAbove: a violation silenced by the preceding line.
func GoodSuppressedAbove(a, b float64) bool {
	//lint:ignore floatcmp fixture: exact compare is the point here
	return a == b
}

// GoodSuppressedSameLine: a violation silenced by a trailing comment.
func GoodSuppressedSameLine(a, b float64) bool {
	return a != b //lint:ignore floatcmp fixture: exact compare is the point here
}

// GoodMultiRule: one directive may name several rules.
func GoodMultiRule(a, b float64) bool {
	//lint:ignore floatcmp,maporder fixture: both rules named
	return a == b
}

// BadStillFires: a directive for a different rule does not suppress.
func BadStillFires(a, b float64) bool {
	//lint:ignore maporder fixture: wrong rule, floatcmp still fires
	return a == b // want "floating-point == comparison"
}

//lint:ignore floatcmp
// want-above "malformed //lint:ignore directive"

//lint:ignore nosuchrule reason text
// want-above "unknown rule \"nosuchrule\""

// BadTooFar: a directive two lines up does not reach.
func BadTooFar(a, b float64) bool {
	//lint:ignore floatcmp fixture: too far away

	return a == b // want "floating-point == comparison"
}

// GoodMultiLineAnchor: a directive on the opening line of a multi-line
// statement covers findings on its continuation lines — the comparison
// here sits two lines below the directive, reachable only through the
// statement anchor.
func GoodMultiLineAnchor(a, b float64) bool {
	xs := []bool{ //lint:ignore floatcmp fixture: directive anchors the whole statement
		false,
		a == b,
	}
	return xs[1]
}

// GoodMultiLineAbove: a directive on the line above the opening line
// covers continuation lines the same way.
func GoodMultiLineAbove(a, b float64) bool {
	//lint:ignore floatcmp fixture: directive above the opening line
	xs := []bool{
		false,
		a != b,
	}
	return xs[1]
}

// BadBlockNotAnchored: block statements are not anchors — a directive
// on the line above an if header must not blanket the body.
func BadBlockNotAnchored(a, b float64) bool {
	//lint:ignore floatcmp fixture: if headers must not blanket their body
	if a > 0 {
		_ = b
		return a == b // want "floating-point == comparison"
	}
	return false
}
