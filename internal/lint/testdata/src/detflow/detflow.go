// Package detflow is the fixture for the whole-program determinism
// taint rule. The package path sits under the lint testdata prefix, so
// its exported functions count as simulation entry points; findings
// land on the sink lines, deep inside helpers.
package detflow

import (
	"math/rand"
	"os"
	"time"
)

// Entry reaches the wall clock two helper hops down.
func Entry() int64 {
	return helperA()
}

func helperA() int64 { return helperB() }

func helperB() int64 {
	return time.Now().UnixNano() // want "determinism taint: repro/internal/lint/testdata/src/detflow.helperB reaches time.Now"
}

// Env reads the environment through a helper.
func Env() string { return readEnv() }

func readEnv() string {
	return os.Getenv("HOME") // want "os.Getenv"
}

// Roll draws from the ambient math/rand stream through a helper.
func Roll() int { return draw() }

func draw() int {
	return rand.Intn(6) // want "math/rand"
}

// Clock abstracts a time source; dispatch must fan out to the
// wall-clock implementation.
type Clock interface{ Tick() int64 }

type wallClock struct{}

func (wallClock) Tick() int64 {
	return time.Now().UnixNano() // want "time.Now"
}

type fixedClock struct{}

func (fixedClock) Tick() int64 { return 42 }

// Dispatch calls through the interface; only wallClock's Tick is a
// sink, and it is reached by the dispatch fan-out.
func Dispatch(c Clock) int64 { return c.Tick() }

// MethodValue leaks the sink through a method value handed to a
// caller; the reference edge keeps it reachable.
func MethodValue() func() int64 {
	var w wallClock
	return w.Tick
}

// Emit writes map entries in iteration order through a helper — a
// map-order sink reached transitively.
func Emit(m map[string]int, out chan<- string) { emitAll(m, out) }

func emitAll(m map[string]int, out chan<- string) {
	for k := range m {
		out <- k // want "map-order"
	}
}

// orphan is never reachable from any entry point: its wall-clock read
// must NOT be flagged by detflow.
func orphan() int64 {
	return time.Now().UnixNano()
}
