// Package helper is half of the cross-package detflow fixture: the
// wall-clock sink hides in an unexported implementation of an
// interface, so it is only reachable through dispatch from the sim
// package next door.
package helper

import "time"

// Source yields timestamps.
type Source interface {
	Next() int64
}

// New returns the wall-clock source.
func New() Source {
	return wall{}
}

type wall struct{}

// Next reads the wall clock — the sink. No exported entry in this
// package reaches it directly.
func (wall) Next() int64 {
	return time.Now().UnixNano()
}
