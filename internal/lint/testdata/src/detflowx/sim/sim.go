// Package sim is the entry half of the cross-package detflow fixture:
// its exported function reaches helper's hidden wall-clock sink only
// through interface dispatch across the package boundary.
package sim

import "repro/internal/lint/testdata/src/detflowx/helper"

// Step drives the source through the interface.
func Step() int64 {
	src := helper.New()
	return src.Next()
}
