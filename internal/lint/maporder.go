package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags range-over-map loops whose bodies do order-sensitive
// work — the classic golden-test breaker: Go randomizes map iteration
// order, so any output written, slice accumulated (and left unsorted),
// RNG stream consumed, or channel fed from inside such a loop differs
// run to run.
//
// The safe collect-then-sort idiom is recognized: appending map keys
// or values to a slice is fine when the same function later passes
// that slice to sort.* or slices.Sort*. Order-independent bodies
// (sums, counters, map-to-map writes, deletes) are never flagged.
var MapOrder = &Analyzer{
	Name:     "maporder",
	Doc:      "forbid order-sensitive work inside range-over-map loops",
	Severity: SeverityError,
	Run:      runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkMapRanges(pass, body)
			}
			return true
		})
	}
}

// checkMapRanges inspects one function body (excluding nested function
// literals, which get their own visit) for range-over-map loops.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	inspectSameFunc(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, body, rng)
		return true
	})
}

// inspectSameFunc walks root like ast.Inspect but does not descend
// into nested function literals.
func inspectSameFunc(root ast.Node, f func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		return f(n)
	})
}

// checkMapRangeBody looks for order-sensitive sinks inside one
// range-over-map body. funcBody is the innermost enclosing function
// body, searched for a later sort of any slice the loop appends to.
func checkMapRangeBody(pass *Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) {
	// Unlike the range scan, sink detection does descend into nested
	// function literals: a closure spawned per iteration still runs
	// once per key, in map order.
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(s.Pos(),
				"channel send inside range over map: receive order becomes nondeterministic; iterate sorted keys instead")
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(s.Lhs) {
					continue
				}
				target, ok := s.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.ObjectOf(target)
				if obj == nil || insideNode(obj.Pos(), rng) {
					continue // loop-local accumulator; caught via other sinks
				}
				if sortedAfter(pass, funcBody, rng, obj) {
					continue // collect-then-sort idiom
				}
				pass.Reportf(s.Pos(),
					"append to %q inside range over map without a later sort: element order is nondeterministic; sort %q before use (or iterate sorted keys)",
					target.Name, target.Name)
			}
		case *ast.CallExpr:
			if name, ok := isPrintCall(pass, s); ok {
				pass.Reportf(s.Pos(),
					"%s inside range over map writes output in nondeterministic order; iterate sorted keys instead", name)
				return true
			}
			if name, ok := isOrderedSinkMethod(pass, s); ok {
				pass.Reportf(s.Pos(),
					"%s inside range over map records output in nondeterministic order; iterate sorted keys instead", name)
				return true
			}
			if isRNGDraw(pass, s) {
				pass.Reportf(s.Pos(),
					"RNG draw inside range over map consumes the stream in nondeterministic order; iterate sorted keys instead")
				return true
			}
		}
		return true
	})
}

// insideNode reports whether pos falls within n's extent.
func insideNode(pos token.Pos, n ast.Node) bool {
	return pos >= n.Pos() && pos < n.End()
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	ident, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.ObjectOf(ident).(*types.Builtin)
	return ok && b.Name() == "append"
}

// isPrintCall recognizes fmt's printing functions (and log's) — any of
// them inside a map range writes output in iteration order.
var printFuncs = map[string]map[string]bool{
	"fmt": {
		"Print": true, "Printf": true, "Println": true,
		"Fprint": true, "Fprintf": true, "Fprintln": true,
	},
	"log": {"Print": true, "Printf": true, "Println": true},
}

func isPrintCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pkgName, ok := pass.Info.Uses[ident].(*types.PkgName)
	if !ok {
		return "", false
	}
	fns, ok := printFuncs[pkgName.Imported().Path()]
	if !ok || !fns[sel.Sel.Name] {
		return "", false
	}
	return pkgName.Imported().Path() + "." + sel.Sel.Name, true
}

// orderedSinkMethods are method names whose calls record ordered
// output: stream writers and the repo's report.Table row builder.
var orderedSinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "AddRow": true,
}

func isOrderedSinkMethod(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !orderedSinkMethods[sel.Sel.Name] {
		return "", false
	}
	// Must be a method call (selection), not a package function.
	if _, ok := pass.Info.Selections[sel]; !ok {
		return "", false
	}
	return sel.Sel.Name, true
}

// isRNGDraw reports whether call is a method call on the deterministic
// RNG source: consuming the stream in map order reorders every
// downstream draw.
func isRNGDraw(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok {
		return false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == pass.Config.RNGPackage
}

// sortFuncs lists the stdlib calls that establish a deterministic
// order over their (first) slice argument.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// sortedAfter reports whether obj is passed to a sort call positioned
// after the range loop within the same function body.
func sortedAfter(pass *Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.Info.Uses[ident].(*types.PkgName)
		if !ok {
			return true
		}
		fns, ok := sortFuncs[pkgName.Imported().Path()]
		if !ok || !fns[sel.Sel.Name] {
			return true
		}
		if argMentions(pass, call.Args[0], obj) {
			found = true
			return false
		}
		return true
	})
	return found
}

// argMentions unwraps &x, conversions like byFreq(x), and slicing
// x[1:] to decide whether a sort argument refers to obj.
func argMentions(pass *Pass, arg ast.Expr, obj types.Object) bool {
	switch e := arg.(type) {
	case *ast.Ident:
		return pass.Info.ObjectOf(e) == obj
	case *ast.UnaryExpr:
		return e.Op == token.AND && argMentions(pass, e.X, obj)
	case *ast.CallExpr:
		return len(e.Args) == 1 && argMentions(pass, e.Args[0], obj)
	case *ast.SliceExpr:
		return argMentions(pass, e.X, obj)
	case *ast.ParenExpr:
		return argMentions(pass, e.X, obj)
	}
	return false
}
