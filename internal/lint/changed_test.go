package lint

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// initChangedRepo builds a throwaway git repo shaped like a module:
// go.mod at the root, two committed packages, and returns its root.
func initChangedRepo(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("git"); err != nil {
		t.Skip("git not available")
	}
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/changed\n\ngo 1.22\n")
	write("pkg1/a.go", "package pkg1\n")
	write("pkg2/b.go", "package pkg2\n")
	git(t, root, "init", "-q")
	git(t, root, "config", "user.email", "lint@test")
	git(t, root, "config", "user.name", "lint test")
	git(t, root, "add", ".")
	git(t, root, "commit", "-q", "-m", "seed")
	return root
}

func git(t *testing.T, root string, args ...string) {
	t.Helper()
	cmd := exec.Command("git", append([]string{"-C", root}, args...)...)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("git %v: %v\n%s", args, err, out)
	}
}

func TestChangedDirs(t *testing.T) {
	root := initChangedRepo(t)

	dirs, err := ChangedDirs(root, "HEAD")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 0 {
		t.Errorf("clean tree: want no changed dirs, got %v", dirs)
	}

	// A tracked modification, an untracked new package, and a testdata
	// fixture change: the first two surface, the fixture does not.
	if err := os.WriteFile(filepath.Join(root, "pkg1", "a.go"), []byte("package pkg1\n\nvar X = 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, "pkg3"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "pkg3", "c.go"), []byte("package pkg3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, "pkg1", "testdata", "src"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "pkg1", "testdata", "src", "f.go"), []byte("package f\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	dirs, err = ChangedDirs(root, "HEAD")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{filepath.Join(root, "pkg1"), filepath.Join(root, "pkg3")}
	if len(dirs) != len(want) {
		t.Fatalf("changed dirs = %v, want %v", dirs, want)
	}
	for i := range want {
		if dirs[i] != want[i] {
			t.Errorf("changed dirs[%d] = %q, want %q", i, dirs[i], want[i])
		}
	}

	// Deleting a package entirely must not surface a nonexistent dir.
	git(t, root, "rm", "-q", "pkg2/b.go")
	dirs, err = ChangedDirs(root, "HEAD")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if filepath.Base(d) == "pkg2" {
			t.Errorf("deleted package pkg2 still reported: %v", dirs)
		}
	}

	// A bad ref is a real error, not an empty result.
	if _, err := ChangedDirs(root, "no-such-ref"); err == nil {
		t.Error("want error for nonexistent ref")
	}
}

func TestIsTestdataPath(t *testing.T) {
	cases := map[string]bool{
		"internal/lint/testdata/src/x/x.go": true,
		"testdata/f.go":                     true,
		"internal/testdatax/f.go":           false,
		"internal/lint/changed.go":          false,
	}
	for rel, want := range cases {
		if got := isTestdataPath(rel); got != want {
			t.Errorf("isTestdataPath(%q) = %v, want %v", rel, got, want)
		}
	}
}

func TestModuleRootWrapper(t *testing.T) {
	root := initChangedRepo(t)
	got, err := ModuleRoot(filepath.Join(root, "pkg1"))
	if err != nil {
		t.Fatal(err)
	}
	if got != root {
		t.Errorf("ModuleRoot(pkg1) = %q, want %q", got, root)
	}
}
