package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The loader replaces golang.org/x/tools/go/packages with a small
// module-aware walker: it discovers every package under the module
// root, parses it with go/parser, and type-checks it with go/types.
// Imports resolve in two tiers — module-internal paths map
// mechanically onto directories under the root, and everything else is
// assumed to be standard library and resolved through the toolchain's
// export data (go/importer "gc"), falling back to type-checking the
// stdlib from source ("source") on toolchains without export data.

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the package's import path within the module.
	Path string
	// Dir is the absolute directory holding the package's files.
	Dir string
	// Files are the parsed syntax trees, sorted by filename.
	Files []*ast.File
	// Types and Info are the type-checker's outputs.
	Types *types.Package
	Info  *types.Info
}

// Loader discovers, parses and type-checks the module's packages.
type Loader struct {
	fset    *token.FileSet
	root    string // absolute module root (directory with go.mod)
	modPath string

	// analyzed memoizes packages loaded with their in-package test
	// files merged (the form the analyzers see); deps memoizes the
	// export form (non-test files only) used to satisfy imports, so
	// a test file's imports can never induce a false cycle.
	analyzed map[string]*Package
	deps     map[string]*types.Package
	checking map[string]bool // import-cycle detection for deps

	stdGC  types.Importer
	stdSrc types.Importer
}

// NewLoader creates a loader rooted at the directory containing go.mod.
// dir may be the root itself or any directory beneath it.
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Loader{
		fset:     token.NewFileSet(),
		root:     root,
		modPath:  modPath,
		analyzed: map[string]*Package{},
		deps:     map[string]*types.Package{},
		checking: map[string]bool{},
		stdGC:    importer.Default(),
	}, nil
}

// Fset exposes the loader's position table.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// ModulePath returns the path declared in go.mod.
func (l *Loader) ModulePath() string { return l.modPath }

// findModuleRoot walks upward from dir until it finds go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", path)
}

// LoadAll discovers and type-checks every package under the module
// root, skipping testdata, vendor, hidden and underscore directories.
// The result is sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		has, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if has {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// hasGoFiles reports whether dir directly contains at least one .go file.
func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true, nil
		}
	}
	return false, nil
}

// LoadDir loads and type-checks the package in dir (which must be at
// or under the module root), merging its in-package test files so the
// analyzers see test code too.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPathFor(abs)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.analyzed[path]; ok {
		return pkg, nil
	}
	files, err := l.parseDir(abs, true)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", abs)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tpkg, err := l.check(path, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: abs, Files: files, Types: tpkg, Info: info}
	l.analyzed[path] = pkg
	return pkg, nil
}

// importPathFor maps an absolute directory under the root to its
// module import path.
func (l *Loader) importPathFor(abs string) (string, error) {
	rel, err := filepath.Rel(l.root, abs)
	if err != nil {
		return "", err
	}
	if rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("lint: %s is outside module root %s", abs, l.root)
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// parseDir parses the .go files of one directory. withTests merges
// in-package _test.go files; external test packages (package foo_test)
// are always skipped — the repository has none, and they would form a
// second package in the same directory.
func (l *Loader) parseDir(dir string, withTests bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var filenames []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !withTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		filenames = append(filenames, name)
	}
	sort.Strings(filenames)
	var files []*ast.File
	pkgName := ""
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		n := f.Name.Name
		if strings.HasSuffix(n, "_test") {
			continue // external test package file
		}
		if pkgName == "" {
			pkgName = n
		} else if n != pkgName {
			return nil, fmt.Errorf("lint: %s: mixed packages %q and %q", dir, pkgName, n)
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks files as package path using the loader to resolve
// imports. Type errors abort: the tree under analysis must compile.
func (l *Loader) check(path string, files []*ast.File, info *types.Info) (*types.Package, error) {
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			typeErrs = append(typeErrs, err)
		},
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, typeErrs[0]
	}
	if err != nil {
		return nil, err
	}
	return tpkg, nil
}

// Import implements types.Importer. Module-internal paths load from
// source (export form, without test files); anything else resolves as
// standard library.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		return l.importModule(path)
	}
	return l.importStd(path)
}

// ImportFrom implements types.ImporterFrom; the module has no vendor
// directory, so resolution ignores the importing directory.
func (l *Loader) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	return l.Import(path)
}

// importModule type-checks a module-internal dependency in its export
// form (no test files), memoized.
func (l *Loader) importModule(path string) (*types.Package, error) {
	if tpkg, ok := l.deps[path]; ok {
		return tpkg, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	rel := strings.TrimPrefix(path, l.modPath)
	rel = strings.TrimPrefix(rel, "/")
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	files, err := l.parseDir(dir, false)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files for import %q in %s", path, dir)
	}
	tpkg, err := l.check(path, files, &types.Info{})
	if err != nil {
		return nil, err
	}
	l.deps[path] = tpkg
	return tpkg, nil
}

// importStd resolves a standard-library import: first via the
// toolchain's compiled export data, then — on toolchains that do not
// ship it — by type-checking the stdlib package from GOROOT source.
func (l *Loader) importStd(path string) (*types.Package, error) {
	pkg, gcErr := l.stdGC.Import(path)
	if gcErr == nil {
		return pkg, nil
	}
	if l.stdSrc == nil {
		// The source importer resolves through go/build; disabling
		// cgo keeps packages like net on their pure-Go files.
		build.Default.CgoEnabled = false
		l.stdSrc = importer.ForCompiler(l.fset, "source", nil)
	}
	pkg, srcErr := l.stdSrc.Import(path)
	if srcErr != nil {
		return nil, fmt.Errorf("lint: importing %q: %v (export data: %v)", path, srcErr, gcErr)
	}
	return pkg, nil
}
