package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// UnitSafety guards the internal/units type discipline at the two
// places Go's own type system lets dimensions leak:
//
//  1. direct conversion between distinct unit types — MHz(v) compiles
//     for a Volt v because both share an underlying float64, silently
//     transmuting volts into megahertz;
//  2. additive arithmetic on float64-stripped values of distinct unit
//     types — float64(volts) + float64(ps) is dimensionally
//     meaningless, while products and quotients legitimately change
//     dimension (V·A→W) and are left alone.
//
// The units package itself is exempt: it defines the types and their
// blessed conversions.
var UnitSafety = &Analyzer{
	Name:     "unitsafety",
	Doc:      "forbid cross-unit conversions and additive mixing of stripped units",
	Severity: SeverityWarn,
	Run:      runUnitSafety,
}

func runUnitSafety(pass *Pass) {
	if pass.Pkg.Path() == pass.Config.UnitsPackage {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				checkUnitConversion(pass, e)
			case *ast.BinaryExpr:
				checkStrippedMix(pass, e)
			}
			return true
		})
	}
}

// checkUnitConversion flags T1(x) where T1 and x's type are distinct
// unit types.
func checkUnitConversion(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	dst := unitTypeName(pass, tv.Type)
	if dst == "" {
		return
	}
	src := unitTypeName(pass, pass.Info.TypeOf(call.Args[0]))
	if src == "" || src == dst {
		return
	}
	pass.Reportf(call.Pos(),
		"conversion %s(...) applied to a %s value transmutes units; convert through an explicit physical relation instead",
		dst, src)
}

// checkStrippedMix flags a + or - whose operands are float64/float32
// conversions of distinct unit types.
func checkStrippedMix(pass *Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.ADD && bin.Op != token.SUB {
		return
	}
	x := strippedUnit(pass, bin.X)
	y := strippedUnit(pass, bin.Y)
	if x == "" || y == "" || x == y {
		return
	}
	pass.Reportf(bin.OpPos,
		"%s mixes stripped %s and %s values: additive arithmetic across units is dimensionally invalid",
		bin.Op, x, y)
}

// strippedUnit returns the unit type name when expr is a plain-float
// conversion float64(u)/float32(u) of a unit-typed value.
func strippedUnit(pass *Pass, expr ast.Expr) string {
	expr = ast.Unparen(expr)
	call, ok := expr.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return ""
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return ""
	}
	basic, ok := tv.Type.(*types.Basic)
	if !ok || basic.Info()&types.IsFloat == 0 {
		return ""
	}
	return unitTypeName(pass, pass.Info.TypeOf(call.Args[0]))
}

// unitTypeName returns t's name when t is a defined type from the
// units package, and "" otherwise.
func unitTypeName(pass *Pass, t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != pass.Config.UnitsPackage {
		return ""
	}
	return obj.Name()
}
