package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The fixture harness is a small analysistest: each package under
// testdata/src/<name> carries `// want "substring"` comments on the
// lines its findings must land on (`// want-above "substring"` targets
// the preceding line, for findings on comment-only lines). A want is
// satisfied by any finding on its line whose message contains the
// quoted substring; every finding must be wanted and every want must
// be found.

// fixtureCases maps fixture package name → the analyzers run over it.
var fixtureCases = map[string][]*Analyzer{
	"detrand":    {DetRand},
	"detflow":    {DetFlow},
	"maporder":   {MapOrder},
	"floatcmp":   {FloatCmp},
	"hotpath":    {HotPath},
	"nilsafe":    {NilSafe},
	"unitsafety": {UnitSafety},
	"errdrop":    {ErrDrop},
	"ignoredir":  {FloatCmp},
}

func TestFixtures(t *testing.T) {
	for name, analyzers := range fixtureCases {
		t.Run(name, func(t *testing.T) {
			runFixture(t, name, analyzers)
		})
	}
}

func runFixture(t *testing.T, name string, analyzers []*Analyzer) {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "src", name)
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	findings := Analyze(loader, []*Package{pkg}, DefaultConfig(), analyzers)

	wants := parseWants(t, loader, pkg)
	for _, f := range findings {
		key := wantKey{filepath.Base(f.File), f.Line}
		matched := false
		for _, w := range wants[key] {
			if strings.Contains(f.Message, w.substr) {
				w.hits++
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding %s:%d [%s] %s", key.file, f.Line, f.Rule, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if w.hits == 0 {
				t.Errorf("%s:%d: no finding matched want %q", key.file, key.line, w.substr)
			}
		}
	}
	if len(findings) == 0 {
		t.Fatalf("fixture %s produced no findings at all", name)
	}
}

type wantKey struct {
	file string
	line int
}

type want struct {
	substr string
	hits   int
}

var wantRe = regexp.MustCompile(`//\s*want(-above)?\s+(.*)`)
var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// parseWants extracts want expectations from every comment of the
// fixture package.
func parseWants(t *testing.T, loader *Loader, pkg *Package) map[wantKey][]*want {
	t.Helper()
	out := map[wantKey][]*want{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := loader.Fset().Position(c.Pos())
				line := pos.Line
				if m[1] == "-above" {
					line--
				}
				quoted := quotedRe.FindAllString(m[2], -1)
				if len(quoted) == 0 {
					t.Fatalf("%s:%d: want comment without a quoted substring", pos.Filename, pos.Line)
				}
				for _, q := range quoted {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
					}
					key := wantKey{filepath.Base(pos.Filename), line}
					out[key] = append(out[key], &want{substr: s})
				}
			}
		}
	}
	return out
}

// TestFixtureRuleIDs asserts each analyzer reports under its own name
// on its fixture — the driver's rule IDs must be trustworthy.
func TestFixtureRuleIDs(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for name, analyzers := range fixtureCases {
		if name == "ignoredir" {
			continue // reports under both "floatcmp" and "ignore"
		}
		pkg, err := loader.LoadDir(filepath.Join("testdata", "src", name))
		if err != nil {
			t.Fatal(err)
		}
		findings := Analyze(loader, []*Package{pkg}, DefaultConfig(), analyzers)
		if len(findings) == 0 {
			t.Errorf("fixture %s: no findings", name)
		}
		for _, f := range findings {
			if f.Rule != name {
				t.Errorf("fixture %s: finding reported under rule %q: %s", name, f.Rule, f)
			}
		}
	}
}

// TestIgnoreDirectiveRule asserts the malformed-directive findings in
// the ignoredir fixture come out under the "ignore" rule ID.
func TestIgnoreDirectiveRule(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "ignoredir"))
	if err != nil {
		t.Fatal(err)
	}
	findings := Analyze(loader, []*Package{pkg}, DefaultConfig(), []*Analyzer{FloatCmp})
	rules := map[string]int{}
	for _, f := range findings {
		rules[f.Rule]++
	}
	if rules["ignore"] != 2 {
		t.Errorf("want 2 findings under rule \"ignore\" (malformed + unknown rule), got %d: %v", rules["ignore"], findings)
	}
	if rules["floatcmp"] != 3 {
		t.Errorf("want 3 unsuppressed floatcmp findings (wrong rule, too far, block not anchored), got %d: %v", rules["floatcmp"], findings)
	}
}

func ExampleFinding_String() {
	f := Finding{Rule: "detrand", Severity: SeverityError, File: "internal/chip/machine.go", Line: 12, Col: 3, Message: "simulation package calls time.Now"}
	fmt.Println(f)
	// Output: internal/chip/machine.go:12:3: [detrand] simulation package calls time.Now
}
