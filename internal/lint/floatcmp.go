package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// FloatCmp flags == and != between floating-point operands outside
// test files. Exact float equality is almost always a latent bug in
// physics code — two mathematically equal computations differ in the
// last ulp — and the handful of legitimate uses (sentinel zeros,
// draw-again loops) must say so with a //lint:ignore annotation.
//
// Two idioms are recognized and allowed:
//
//   - x != x (and x == x): the NaN check;
//   - comparison against the exact constant zero: Go's zero-value
//     "field unset" sentinel and the division guard (if denom == 0)
//     are exact by construction, not rounding-sensitive.
//
// Ordered comparisons (<, <=, >, >=) are not flagged: they degrade
// gracefully under rounding. Use stats.ApproxEqual for tolerance
// comparison.
var FloatCmp = &Analyzer{
	Name:     "floatcmp",
	Doc:      "forbid ==/!= between floating-point values outside tests",
	Severity: SeverityWarn,
	Run:      runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	for _, file := range pass.Files {
		filename := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.Info.TypeOf(bin.X)) || !isFloat(pass.Info.TypeOf(bin.Y)) {
				return true
			}
			if sameExpr(bin.X, bin.Y) {
				return true // x != x / x == x: the NaN-check idiom
			}
			if isZeroConst(pass, bin.X) || isZeroConst(pass, bin.Y) {
				return true // unset-sentinel / division-guard idiom
			}
			pass.Reportf(bin.OpPos,
				"floating-point %s comparison: use stats.ApproxEqual (or annotate an intentional exact compare with //lint:ignore floatcmp <reason>)",
				bin.Op)
			return true
		})
	}
}

// isZeroConst reports whether e is a compile-time constant equal to
// exactly zero (a literal 0, or a named constant with that value).
func isZeroConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	if k := tv.Value.Kind(); k != constant.Int && k != constant.Float {
		return false
	}
	return constant.Sign(tv.Value) == 0
}

// isFloat reports whether t's underlying type is a floating-point
// basic type (covering named unit types, whose underlying is float64).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// sameExpr reports whether two expressions are structurally identical
// simple references (an identifier or selector chain) — enough to
// recognize x != x and a.b != a.b.
func sameExpr(a, b ast.Expr) bool {
	switch ea := a.(type) {
	case *ast.Ident:
		eb, ok := b.(*ast.Ident)
		return ok && ea.Name == eb.Name
	case *ast.SelectorExpr:
		eb, ok := b.(*ast.SelectorExpr)
		return ok && ea.Sel.Name == eb.Sel.Name && sameExpr(ea.X, eb.X)
	}
	return false
}
