package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestReadModulePath(t *testing.T) {
	dir := t.TempDir()
	gomod := filepath.Join(dir, "go.mod")
	if err := os.WriteFile(gomod, []byte("// header\nmodule example.com/m\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readModulePath(gomod)
	if err != nil {
		t.Fatal(err)
	}
	if got != "example.com/m" {
		t.Errorf("module path = %q, want example.com/m", got)
	}
	if err := os.WriteFile(gomod, []byte("go 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readModulePath(gomod); err == nil {
		t.Error("want error for go.mod without module directive")
	}
}

func TestConfigScoping(t *testing.T) {
	cfg := DefaultConfig()
	cases := []struct {
		path     string
		sim, err bool
	}{
		{"repro/internal/chip", true, false},
		{"repro/internal/fsp", false, true},
		{"repro/cmd/atmctl", false, true},
		{"repro/cmd/atmlint", false, true},
		{"repro/internal/report", false, false},
		{"repro/internal/rng", false, false},
		{"repro", false, false},
		{"repro/internal/lint/testdata/src/detrand", true, true},
	}
	for _, c := range cases {
		if got := cfg.isSimPackage(c.path); got != c.sim {
			t.Errorf("isSimPackage(%q) = %v, want %v", c.path, got, c.sim)
		}
		if got := cfg.isErrPackage(c.path); got != c.err {
			t.Errorf("isErrPackage(%q) = %v, want %v", c.path, got, c.err)
		}
	}
}

func TestSortFindingsOrder(t *testing.T) {
	fs := []Finding{
		{File: "b.go", Line: 1, Col: 1, Rule: "r", Message: "m"},
		{File: "a.go", Line: 2, Col: 1, Rule: "r", Message: "m"},
		{File: "a.go", Line: 1, Col: 5, Rule: "r", Message: "m"},
		{File: "a.go", Line: 1, Col: 5, Rule: "q", Message: "m"},
	}
	sortFindings(fs)
	want := []string{"a.go/1/5/q", "a.go/1/5/r", "a.go/2/1/r", "b.go/1/1/r"}
	for i, f := range fs {
		got := fmt.Sprintf("%s/%d/%d/%s", f.File, f.Line, f.Col, f.Rule)
		if got != want[i] {
			t.Errorf("position %d: got %s, want %s", i, got, want[i])
		}
	}
}

func TestAnalyzersSortedAndNamed(t *testing.T) {
	as := Analyzers()
	if len(as) != 8 {
		t.Fatalf("want 8 analyzers, got %d", len(as))
	}
	for i, a := range as {
		if a.Name == "" || a.Doc == "" || (a.Run == nil && a.RunProgram == nil) {
			t.Errorf("analyzer %d incompletely registered: %+v", i, a)
		}
		if i > 0 && as[i-1].Name >= a.Name {
			t.Errorf("analyzers not sorted: %q before %q", as[i-1].Name, a.Name)
		}
	}
}
