package lint

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// ModuleRoot resolves the module root (the directory holding go.mod)
// at or above dir — the root ChangedDirs diffs against.
func ModuleRoot(dir string) (string, error) {
	return findModuleRoot(dir)
}

// ChangedDirs returns the package directories (absolute, sorted,
// deduplicated) whose Go files differ from the git ref — tracked
// changes via `git diff --name-only <ref>` plus untracked files via
// `git ls-files --others` — rooted at the module directory root. It is
// the discovery step of `atmlint -changed`: the pre-commit fast path
// lints only these directories while CI's full job keeps whole-module
// coverage. Directories that no longer exist (all files deleted) and
// testdata fixtures are skipped.
func ChangedDirs(root, ref string) ([]string, error) {
	diff, err := gitLines(root, "diff", "--name-only", ref, "--", "*.go")
	if err != nil {
		return nil, fmt.Errorf("lint: git diff against %q: %w", ref, err)
	}
	untracked, err := gitLines(root, "ls-files", "--others", "--exclude-standard", "--", "*.go")
	if err != nil {
		return nil, fmt.Errorf("lint: git ls-files: %w", err)
	}

	seen := map[string]bool{}
	var dirs []string
	for _, rel := range append(diff, untracked...) {
		if rel == "" || !strings.HasSuffix(rel, ".go") {
			continue
		}
		if isTestdataPath(rel) {
			continue // fixtures are linted through their tests, not module walks
		}
		dir := filepath.Join(root, filepath.Dir(filepath.FromSlash(rel)))
		if seen[dir] {
			continue
		}
		seen[dir] = true
		if info, err := os.Stat(dir); err != nil || !info.IsDir() {
			continue // directory removed entirely
		}
		has, err := hasGoFiles(dir)
		if err != nil {
			return nil, err
		}
		if has {
			dirs = append(dirs, dir)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// isTestdataPath reports whether the slash-separated relative path has
// a testdata component.
func isTestdataPath(rel string) bool {
	for _, part := range strings.Split(rel, "/") {
		if part == "testdata" {
			return true
		}
	}
	return false
}

// gitLines runs one git command under root and splits its output into
// trimmed lines.
func gitLines(root string, args ...string) ([]string, error) {
	cmd := exec.Command("git", append([]string{"-C", root}, args...)...)
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			return nil, fmt.Errorf("%w: %s", err, strings.TrimSpace(string(ee.Stderr)))
		}
		return nil, err
	}
	var lines []string
	for _, line := range strings.Split(string(out), "\n") {
		if l := strings.TrimSpace(line); l != "" {
			lines = append(lines, l)
		}
	}
	return lines, nil
}
