package lint

import (
	"bytes"
	"strings"
	"testing"
)

// TestRepoClean wires atmlint into the tier-1 test path: the module
// must lint clean, so `go test ./...` fails the moment a determinism,
// unit-safety or error-hygiene violation lands anywhere in the tree.
func TestRepoClean(t *testing.T) {
	findings, err := Run(".", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("%d finding(s); run `go run ./cmd/atmlint ./...` and fix or annotate them", len(findings))
	}
}

// TestDeterministicOutput runs the full analysis twice with fresh
// loaders and demands byte-identical rendered output — the linter that
// polices nondeterminism must not exhibit any (map-ordered package
// walks, unsorted findings).
func TestDeterministicOutput(t *testing.T) {
	render := func() (string, string) {
		findings, err := Run(".", DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		var text, js bytes.Buffer
		if err := Render(&text, findings); err != nil {
			t.Fatal(err)
		}
		if err := RenderJSON(&js, findings); err != nil {
			t.Fatal(err)
		}
		return text.String(), js.String()
	}
	text1, js1 := render()
	text2, js2 := render()
	if text1 != text2 {
		t.Errorf("text output differs between runs:\n--- run 1\n%s\n--- run 2\n%s", text1, text2)
	}
	if js1 != js2 {
		t.Errorf("JSON output differs between runs:\n--- run 1\n%s\n--- run 2\n%s", js1, js2)
	}
	if !strings.HasPrefix(strings.TrimSpace(js1), "[") {
		t.Errorf("JSON output is not an array: %q", js1)
	}
}

// TestFixturesFailStandalone asserts RunDir (the driver's
// single-package mode) exits with findings on each fixture directory —
// the acceptance path `go run ./cmd/atmlint internal/lint/testdata/src/<rule>`.
func TestFixturesFailStandalone(t *testing.T) {
	for name := range fixtureCases {
		findings, err := RunDir("testdata/src/"+name, DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(findings) == 0 {
			t.Errorf("fixture %s: RunDir found nothing; atmlint would wrongly exit 0", name)
		}
	}
}
