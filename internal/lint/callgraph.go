package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The call-graph builder turns a set of analyzed packages into a
// conservative whole-program call graph for the flow rules (detflow).
// Three edge kinds are modeled:
//
//   - call:     a statically resolved call to a named function/method;
//   - ref:      a reference to a function value without calling it —
//     method values, callbacks handed to another layer, assignments
//     into function-typed variables. The referenced function may be
//     called later, so the edge is kept (conservative over-approximation);
//   - dispatch: a call through an interface method, fanned out to the
//     method of every named type in the program implementing that
//     interface.
//
// Function literals do not get their own nodes: a closure's body is
// attributed to the function (or package initializer) that lexically
// contains it, which is where its captured environment lives and the
// only place a reviewer can annotate. Package-level variable
// initializers and explicit init functions fold into one pseudo-node
// per package, "<path>.init", because package initialization runs in
// every process importing the package.
//
// The graph is deterministic: nodes and adjacency lists are sorted, so
// traversals (and therefore detflow's findings and example chains) are
// byte-identical across runs.

// EdgeKind classifies a call-graph edge.
type EdgeKind int

// Edge kinds.
const (
	EdgeCall EdgeKind = iota
	EdgeRef
	EdgeDispatch
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeRef:
		return "ref"
	case EdgeDispatch:
		return "dispatch"
	default:
		return "invalid"
	}
}

// Edge is one outgoing call-graph edge.
type Edge struct {
	Callee string // callee node ID
	Kind   EdgeKind
	Pos    token.Pos // call or reference site
}

// Node is one function (or package-init pseudo-function) of the graph.
type Node struct {
	// ID is the stable identifier: "pkg.Func", "pkg.(*Recv).Method",
	// "pkg.(Recv).Method" or "pkg.init".
	ID string
	// Pkg is the defining package's import path.
	Pkg string
	// Fn is the type-checker object (nil for init pseudo-nodes and
	// interface-method nodes without bodies in the program).
	Fn *types.Func
	// Pos is the declaration position (NoPos for init pseudo-nodes).
	Pos token.Pos
	// Exported reports whether the function and (for methods) its
	// receiver type are exported.
	Exported bool
	// TestOnly reports whether the declaration lives in a _test.go
	// file.
	TestOnly bool
	// Edges are the outgoing edges, sorted by (Callee, Kind, Pos) and
	// deduplicated by (Callee, Kind).
	Edges []Edge
}

// CallGraph is the whole-program graph plus the per-file function
// extent index used to attribute arbitrary positions to functions.
type CallGraph struct {
	Nodes map[string]*Node

	fset    *token.FileSet
	extents map[string][]extent // filename → sorted decl extents
}

type extent struct {
	start, end token.Pos
	id         string
}

// FuncID renders the stable node identifier of fn.
func FuncID(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path() + "."
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return pkg + fn.Name()
	}
	t := sig.Recv().Type()
	ptr := ""
	if p, okp := t.(*types.Pointer); okp {
		t = p.Elem()
		ptr = "*"
	}
	name := "?"
	if n, okn := t.(*types.Named); okn {
		name = n.Obj().Name()
	}
	return pkg + "(" + ptr + name + ")." + fn.Name()
}

// initID is the pseudo-node ID of a package's initialization.
func initID(pkgPath string) string { return pkgPath + ".init" }

// BuildCallGraph constructs the conservative call graph over pkgs.
func BuildCallGraph(fset *token.FileSet, pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Nodes:   map[string]*Node{},
		fset:    fset,
		extents: map[string][]extent{},
	}
	named := collectNamedTypes(pkgs)

	// Pass 1: declare nodes so extents and exportedness are known
	// before edges resolve.
	for _, pkg := range pkgs {
		g.ensureNode(initID(pkg.Path), pkg.Path, nil, token.NoPos, false, false)
		for _, file := range pkg.Files {
			testOnly := strings.HasSuffix(fset.Position(file.Pos()).Filename, "_test.go")
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					fn, ok := pkg.Info.Defs[d.Name].(*types.Func)
					if !ok {
						continue
					}
					if d.Name.Name == "init" && d.Recv == nil {
						g.addExtent(d, initID(pkg.Path))
						continue
					}
					id := FuncID(fn)
					g.ensureNode(id, pkg.Path, fn, d.Pos(), declExported(fn), testOnly)
					g.addExtent(d, id)
				case *ast.GenDecl:
					// Package-level var initializers run at package
					// init: their extents attribute to the pseudo-node.
					if d.Tok != token.VAR {
						continue
					}
					for _, spec := range d.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
							g.addExtent(vs, initID(pkg.Path))
						}
					}
				}
			}
		}
	}

	// Pass 2: edges.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					id := initID(pkg.Path)
					if !(d.Name.Name == "init" && d.Recv == nil) {
						if fn, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
							id = FuncID(fn)
						}
					}
					g.addEdgesFrom(id, d.Body, pkg, named)
				case *ast.GenDecl:
					if d.Tok != token.VAR {
						continue
					}
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, v := range vs.Values {
							g.addEdgesFrom(initID(pkg.Path), v, pkg, named)
						}
					}
				}
			}
		}
	}

	for _, n := range g.Nodes {
		sortEdges(n)
	}
	for file := range g.extents {
		ex := g.extents[file]
		sort.Slice(ex, func(i, j int) bool { return ex[i].start < ex[j].start })
		g.extents[file] = ex
	}
	return g
}

// declExported reports whether fn is callable from outside its package
// without reflection: exported name and, for methods, exported
// receiver type.
func declExported(fn *types.Func) bool {
	if !fn.Exported() {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return true
	}
	t := sig.Recv().Type()
	if p, okp := t.(*types.Pointer); okp {
		t = p.Elem()
	}
	if n, okn := t.(*types.Named); okn {
		return n.Obj().Exported()
	}
	return true
}

func (g *CallGraph) ensureNode(id, pkgPath string, fn *types.Func, pos token.Pos, exported, testOnly bool) *Node {
	if n, ok := g.Nodes[id]; ok {
		return n
	}
	n := &Node{ID: id, Pkg: pkgPath, Fn: fn, Pos: pos, Exported: exported, TestOnly: testOnly}
	g.Nodes[id] = n
	return n
}

func (g *CallGraph) addExtent(n ast.Node, id string) {
	file := g.fset.Position(n.Pos()).Filename
	g.extents[file] = append(g.extents[file], extent{start: n.Pos(), end: n.End(), id: id})
}

// NodeAt returns the ID of the function whose declaration contains
// pos, or "" when pos is outside every declared function (package
// scope).
func (g *CallGraph) NodeAt(pos token.Pos) string {
	file := g.fset.Position(pos).Filename
	for _, ex := range g.extents[file] {
		if pos >= ex.start && pos < ex.end {
			return ex.id
		}
	}
	return ""
}

// NodeAtLine maps a (filename, line) pair — the form findings carry —
// back to the containing function's node ID, or "".
func (g *CallGraph) NodeAtLine(file string, line int) string {
	for _, ex := range g.extents[file] {
		start := g.fset.Position(ex.start)
		end := g.fset.Position(ex.end)
		if line >= start.Line && line <= end.Line {
			return ex.id
		}
	}
	return ""
}

// SortedIDs returns every node ID in sorted order.
func (g *CallGraph) SortedIDs() []string {
	ids := make([]string, 0, len(g.Nodes))
	for id := range g.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func sortEdges(n *Node) {
	sort.Slice(n.Edges, func(i, j int) bool {
		a, b := n.Edges[i], n.Edges[j]
		if a.Callee != b.Callee {
			return a.Callee < b.Callee
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Pos < b.Pos
	})
	out := n.Edges[:0]
	for _, e := range n.Edges {
		if len(out) > 0 && out[len(out)-1].Callee == e.Callee && out[len(out)-1].Kind == e.Kind {
			continue
		}
		out = append(out, e)
	}
	n.Edges = out
}

// addEdgesFrom walks body (a function body or an initializer
// expression) and records every resolvable edge out of the node id.
// Nested function literals are folded into id.
func (g *CallGraph) addEdgesFrom(id string, body ast.Node, pkg *Package, named []types.Type) {
	node := g.Nodes[id]
	// callees collects the Fun expression of every call, and selSels
	// the Sel ident of every selector, so the identifier walk can tell
	// a genuine standalone function reference from the name inside a
	// call or selector it already handled.
	callees := map[ast.Expr]bool{}
	selSels := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			callees[unparen(e.Fun)] = true
		case *ast.SelectorExpr:
			selSels[e.Sel] = true
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			g.addCallEdges(node, e, pkg, named)
		case *ast.Ident:
			// Reference (not call) of a named function: callback,
			// assignment into a function-typed variable.
			if callees[ast.Expr(e)] || selSels[e] {
				return true
			}
			if fn, ok := pkg.Info.Uses[e].(*types.Func); ok {
				node.Edges = append(node.Edges, Edge{Callee: FuncID(fn), Kind: EdgeRef, Pos: e.Pos()})
			}
		case *ast.SelectorExpr:
			if callees[ast.Expr(e)] {
				return true // handled as a call; still descend into e.X
			}
			// Method value (x.Foo), method expression (T.Foo) or
			// package-qualified function reference (pkg.Fn).
			if fn, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
				node.Edges = append(node.Edges, Edge{Callee: FuncID(fn), Kind: EdgeRef, Pos: e.Pos()})
			}
		}
		return true
	})
}

// addCallEdges resolves one call expression into edges.
func (g *CallGraph) addCallEdges(node *Node, call *ast.CallExpr, pkg *Package, named []types.Type) {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			node.Edges = append(node.Edges, Edge{Callee: FuncID(fn), Kind: EdgeCall, Pos: call.Pos()})
		}
	case *ast.SelectorExpr:
		sel, isSelection := pkg.Info.Selections[fun]
		if !isSelection {
			// Package-qualified call (pkg.Fn) or type conversion.
			if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
				node.Edges = append(node.Edges, Edge{Callee: FuncID(fn), Kind: EdgeCall, Pos: call.Pos()})
			}
			return
		}
		fn, ok := sel.Obj().(*types.Func)
		if !ok {
			return // field of function type: dynamic, covered by ref edges
		}
		recv := sel.Recv()
		if iface, isIface := recv.Underlying().(*types.Interface); isIface {
			// Interface dispatch: fan out to every implementation in
			// the program, via the abstract method node for readable
			// chains.
			ifaceID := FuncID(fn)
			ifaceNode := g.ensureNode(ifaceID, node.Pkg, fn, fn.Pos(), false, false)
			node.Edges = append(node.Edges, Edge{Callee: ifaceID, Kind: EdgeCall, Pos: call.Pos()})
			for _, t := range named {
				impl := implementation(t, iface, fn.Name())
				if impl == nil {
					continue
				}
				ifaceNode.Edges = append(ifaceNode.Edges, Edge{Callee: FuncID(impl), Kind: EdgeDispatch, Pos: call.Pos()})
			}
			return
		}
		node.Edges = append(node.Edges, Edge{Callee: FuncID(fn), Kind: EdgeCall, Pos: call.Pos()})
	}
}

// implementation returns t's (or *t's) concrete method named name when
// t implements iface, nil otherwise.
func implementation(t types.Type, iface *types.Interface, name string) *types.Func {
	if types.IsInterface(t) {
		return nil
	}
	pt := types.NewPointer(t)
	if !types.Implements(t, iface) && !types.Implements(pt, iface) {
		return nil
	}
	obj, _, _ := types.LookupFieldOrMethod(pt, true, nil, name)
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return fn
}

// collectNamedTypes gathers every named (non-interface) type declared
// in pkgs, sorted by rendered name for deterministic fan-out order.
func collectNamedTypes(pkgs []*Package) []types.Type {
	var out []types.Type
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			n, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(n) {
				continue
			}
			out = append(out, n)
		}
	}
	return out
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
