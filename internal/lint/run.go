package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
)

// Run loads every package under the module containing dir and applies
// every registered analyzer, honoring //lint:ignore directives. The
// returned findings are deterministically sorted; file paths are
// relative to the module root so output is stable across checkouts.
func Run(dir string, cfg *Config) ([]Finding, error) {
	return run(dir, cfg, func(l *Loader) ([]*Package, error) {
		return l.LoadAll()
	})
}

// RunDir lints the single package in dir (which must sit inside a
// module), with the same directive handling and ordering as Run.
func RunDir(dir string, cfg *Config) ([]Finding, error) {
	return run(dir, cfg, func(l *Loader) ([]*Package, error) {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		return []*Package{pkg}, nil
	})
}

func run(dir string, cfg *Config, load func(*Loader) ([]*Package, error)) ([]Finding, error) {
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := load(loader)
	if err != nil {
		return nil, err
	}
	findings := Analyze(loader, pkgs, cfg, Analyzers())
	for i := range findings {
		if rel, err := filepath.Rel(loader.root, findings[i].File); err == nil {
			findings[i].File = filepath.ToSlash(rel)
		}
	}
	sortFindings(findings)
	return findings, nil
}

// Analyze applies analyzers to the given packages, suppressing
// findings covered by //lint:ignore directives and reporting malformed
// directives. Findings are sorted before being returned.
func Analyze(loader *Loader, pkgs []*Package, cfg *Config, analyzers []*Analyzer) []Finding {
	var all []Finding
	for _, pkg := range pkgs {
		ignores := map[int][]ignoreDirective{}
		for _, file := range pkg.Files {
			for line, ds := range parseIgnores(loader.fset, file, func(f Finding) {
				all = append(all, f) // malformed directives are not suppressible
			}) {
				ignores[line] = append(ignores[line], ds...)
			}
		}
		var raw []Finding
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     loader.fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Config:   cfg,
				report:   func(f Finding) { raw = append(raw, f) },
			}
			a.Run(pass)
		}
		for _, f := range raw {
			if !suppressed(f, ignores) {
				all = append(all, f)
			}
		}
	}
	sortFindings(all)
	return all
}

// Render writes findings one per line in file:line:col form.
func Render(w io.Writer, findings []Finding) error {
	for _, f := range findings {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	return nil
}

// RenderJSON writes findings as an indented JSON array (an empty
// array, not null, when there are none) followed by a newline.
func RenderJSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}
