package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
)

// Run loads every package under the module containing dir and applies
// every registered analyzer, honoring //lint:ignore directives. The
// returned findings are deterministically sorted; file paths are
// relative to the module root so output is stable across checkouts.
func Run(dir string, cfg *Config) ([]Finding, error) {
	return RunRules(dir, cfg, Analyzers())
}

// RunRules is Run restricted to the given analyzers.
func RunRules(dir string, cfg *Config, analyzers []*Analyzer) ([]Finding, error) {
	return runAnalyzers(dir, cfg, analyzers, true, func(l *Loader) ([]*Package, error) {
		return l.LoadAll()
	})
}

// RunDir lints the single package in dir (which must sit inside a
// module), with the same directive handling and ordering as Run.
// Program rules see only that package; completeness checks (stale
// detflow baseline entries) are reserved for whole-module runs.
func RunDir(dir string, cfg *Config) ([]Finding, error) {
	return RunDirs([]string{dir}, cfg, Analyzers())
}

// RunDirs lints the packages in dirs (all inside one module) with the
// given analyzers — the `-changed` fast path. Program rules see the
// selected packages as a partial program.
func RunDirs(dirs []string, cfg *Config, analyzers []*Analyzer) ([]Finding, error) {
	if len(dirs) == 0 {
		return []Finding{}, nil
	}
	return runAnalyzers(dirs[0], cfg, analyzers, false, func(l *Loader) ([]*Package, error) {
		pkgs := make([]*Package, 0, len(dirs))
		for _, dir := range dirs {
			pkg, err := l.LoadDir(dir)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
		return pkgs, nil
	})
}

func runAnalyzers(dir string, cfg *Config, analyzers []*Analyzer, whole bool, load func(*Loader) ([]*Package, error)) ([]Finding, error) {
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := load(loader)
	if err != nil {
		return nil, err
	}
	findings := analyze(loader, pkgs, cfg, analyzers, whole)
	for i := range findings {
		if filepath.IsAbs(findings[i].File) {
			if rel, err := filepath.Rel(loader.root, findings[i].File); err == nil {
				findings[i].File = filepath.ToSlash(rel)
			}
		}
	}
	sortFindings(findings)
	return findings, nil
}

// Analyze applies analyzers to the given packages, suppressing
// findings covered by //lint:ignore directives and reporting malformed
// directives. Program analyzers see the packages as a (partial)
// program; completeness findings are reserved for whole-module runs
// through Run. Findings are sorted before being returned.
func Analyze(loader *Loader, pkgs []*Package, cfg *Config, analyzers []*Analyzer) []Finding {
	return analyze(loader, pkgs, cfg, analyzers, false)
}

func analyze(loader *Loader, pkgs []*Package, cfg *Config, analyzers []*Analyzer, whole bool) []Finding {
	var all []Finding
	// Suppression context for every file of every package up front:
	// program analyzers report across package boundaries.
	ignores := map[string]*fileIgnores{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			name := loader.fset.Position(file.Pos()).Filename
			ignores[name] = &fileIgnores{
				directives: parseIgnores(loader.fset, file, func(f Finding) {
					all = append(all, f) // malformed directives are not suppressible
				}),
				anchors: stmtAnchors(loader.fset, file),
			}
		}
	}
	var raw []Finding
	report := func(f Finding) { raw = append(raw, f) }
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			a.Run(&Pass{
				Analyzer: a,
				Fset:     loader.fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Config:   cfg,
				report:   report,
			})
		}
	}
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		a.RunProgram(&ProgramPass{
			Analyzer:     a,
			Fset:         loader.fset,
			Pkgs:         pkgs,
			Config:       cfg,
			Root:         loader.root,
			WholeProgram: whole,
			report:       report,
		})
	}
	for _, f := range raw {
		if !suppressed(f, ignores) {
			all = append(all, f)
		}
	}
	sortFindings(all)
	return all
}

// Render writes findings one per line in file:line:col form.
func Render(w io.Writer, findings []Finding) error {
	for _, f := range findings {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	return nil
}

// RenderJSON writes findings as an indented JSON array (an empty
// array, not null, when there are none) followed by a newline.
func RenderJSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}
