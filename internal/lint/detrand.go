package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// DetRand forbids ambient nondeterminism inside simulation packages:
// math/rand (stream output is not stable across Go releases), wall
// clock reads (time.Now / time.Since), and environment reads
// (os.Getenv / os.LookupEnv / os.Environ). Every stochastic draw must
// come from the seeded, splittable generator in internal/rng, and
// every "time" in the simulator is simulated time, so the invariant
// for bit-reproducible experiments (DESIGN.md §3) is: no source of
// entropy the seed does not control.
var DetRand = &Analyzer{
	Name:     "detrand",
	Doc:      "forbid math/rand, wall-clock and environment reads in simulation packages",
	Severity: SeverityError,
	Run:      runDetRand,
}

// bannedFuncs maps package path → function names whose use inside a
// simulation package breaks seeded reproducibility.
var bannedFuncs = map[string]map[string]bool{
	"time": {"Now": true, "Since": true, "Until": true},
	"os":   {"Getenv": true, "LookupEnv": true, "Environ": true},
}

var bannedImports = map[string]string{
	"math/rand":    "its streams are not stable across Go releases",
	"math/rand/v2": "its streams are not seed-reproducible here",
	"crypto/rand":  "it is entropy the seed does not control",
}

func runDetRand(pass *Pass) {
	path := pass.Pkg.Path()
	if !pass.Config.isSimPackage(path) || path == pass.Config.RNGPackage {
		return
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := bannedImports[p]; ok {
				pass.Reportf(imp.Pos(),
					"simulation package imports %q (%s); draw from %s instead",
					p, why, pass.Config.RNGPackage)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			banned, ok := bannedFuncs[pkgName.Imported().Path()]
			if !ok || !banned[sel.Sel.Name] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"simulation package calls %s.%s: wall-clock and environment reads break seeded reproducibility",
				pkgName.Imported().Path(), sel.Sel.Name)
			return true
		})
	}
}
