// Package lint is a stdlib-only static-analysis framework enforcing the
// simulator's determinism, unit-safety and error-hygiene invariants —
// the properties the Go compiler cannot check but the reproduction
// depends on (DESIGN.md §3, golden tests in internal/core).
//
// The framework deliberately mirrors the shape of golang.org/x/tools'
// go/analysis (Analyzer, Pass, Reportf) without importing it: the repo
// carries no module dependencies, so the loader in load.go type-checks
// the tree with go/parser + go/types and the importers shipped in the
// standard library.
//
// Rules:
//
//	detrand    — no math/rand, time.Now/Since or os.Getenv inside
//	             simulation packages; draw from internal/rng instead.
//	maporder   — no order-sensitive work (appends later left unsorted,
//	             output writes, RNG draws) inside range-over-map loops.
//	floatcmp   — no ==/!= between floating-point values outside tests;
//	             compare via internal/stats epsilon helpers.
//	unitsafety — no direct conversion between distinct internal/units
//	             types, and no +/- mixing of float64-stripped units.
//	errdrop    — no discarded error returns in cmd/ and internal/fsp.
//	ignore     — malformed or unknown //lint:ignore directives.
//
// A finding is suppressed by an annotation on the same line or the line
// directly above it:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// The reason is mandatory; the framework reports malformed or
// unknown-rule directives under the rule ID "ignore".
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Severity classifies how a finding should be treated by a reader.
// Every finding, regardless of severity, fails the lint run: severity
// is reporting metadata, not an enforcement level.
type Severity string

const (
	// SeverityError marks invariant violations (nondeterminism,
	// dropped errors) that are bugs until proven otherwise.
	SeverityError Severity = "error"
	// SeverityWarn marks constructs that are sometimes legitimate but
	// must be annotated to pass (exact float compares, unit strips).
	SeverityWarn Severity = "warn"
)

// Analyzer is one lint rule: a name, documentation, a severity for its
// findings and a Run function walking one type-checked package.
type Analyzer struct {
	// Name is the rule ID reported with each finding and matched by
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description shown by `atmlint -rules`.
	Doc string
	// Severity classifies the rule's findings.
	Severity Severity
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's syntax trees, sorted by filename.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's results for Files.
	Info *types.Info
	// Config is the run configuration (package scopes, module path).
	Config *Config

	report func(Finding)
}

// Reportf records a finding at pos. Suppression by //lint:ignore
// directives is applied by the runner, not here.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Finding{
		Rule:     p.Analyzer.Name,
		Severity: p.Analyzer.Severity,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported rule violation.
type Finding struct {
	Rule     string   `json:"rule"`
	Severity Severity `json:"severity"`
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Message  string   `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// sortFindings orders findings deterministically: by file, line,
// column, rule, then message. Two runs over the same tree must render
// byte-identical output (the tool polices nondeterminism; it cannot
// exhibit it).
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// Config scopes the rules to the packages they police. The zero value
// is not useful; call DefaultConfig for the repository's settings.
type Config struct {
	// ModulePath is the module's import path ("repro").
	ModulePath string
	// SimPackages are the import paths detrand treats as simulation
	// code, where wall-clock reads and ambient randomness are banned.
	SimPackages []string
	// ErrPackages are import-path prefixes where errdrop polices
	// discarded errors (exact path, or prefix when ending in "/").
	ErrPackages []string
	// UnitsPackage is the import path of the typed-quantities package
	// whose types unitsafety protects.
	UnitsPackage string
	// RNGPackage is the import path of the blessed deterministic RNG;
	// detrand allowlists it and maporder treats draws from it as
	// order-sensitive sinks.
	RNGPackage string
	// TestdataPrefix puts lint's own fixture packages (which live
	// under a testdata directory and are skipped by module walks) in
	// scope for every path-scoped rule, so `atmlint <fixture-dir>`
	// exercises all five analyzers.
	TestdataPrefix string
}

// DefaultConfig returns the repository's lint scope.
func DefaultConfig() *Config {
	return &Config{
		ModulePath: "repro",
		SimPackages: []string{
			"repro/internal/chip",
			"repro/internal/cpm",
			"repro/internal/dpll",
			"repro/internal/pdn",
			"repro/internal/silicon",
			"repro/internal/charact",
			"repro/internal/tuning",
			"repro/internal/fault",
			"repro/internal/manage",
			"repro/internal/sched",
			"repro/internal/predict",
			"repro/internal/workload",
			"repro/internal/thermal",
			"repro/internal/obs",
			"repro/internal/fleet",
			"repro/internal/guard",
		},
		ErrPackages: []string{
			"repro/cmd/",
			"repro/internal/fsp",
		},
		UnitsPackage:   "repro/internal/units",
		RNGPackage:     "repro/internal/rng",
		TestdataPrefix: "repro/internal/lint/testdata/",
	}
}

// isSimPackage reports whether path is one of the simulation packages.
func (c *Config) isSimPackage(path string) bool {
	if c.isTestdata(path) {
		return true
	}
	for _, p := range c.SimPackages {
		if path == p {
			return true
		}
	}
	return false
}

// isErrPackage reports whether errdrop polices path.
func (c *Config) isErrPackage(path string) bool {
	if c.isTestdata(path) {
		return true
	}
	for _, p := range c.ErrPackages {
		if strings.HasSuffix(p, "/") {
			if strings.HasPrefix(path, p) {
				return true
			}
		} else if path == p {
			return true
		}
	}
	return false
}

// isTestdata reports whether path is a lint fixture package.
func (c *Config) isTestdata(path string) bool {
	return c.TestdataPrefix != "" && strings.HasPrefix(path, c.TestdataPrefix)
}

// Analyzers returns every registered rule, sorted by name.
func Analyzers() []*Analyzer {
	as := []*Analyzer{
		DetRand,
		ErrDrop,
		FloatCmp,
		MapOrder,
		UnitSafety,
	}
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}

// ---- //lint:ignore directives ----

const ignorePrefix = "//lint:ignore"

// ignoreDirective is one parsed //lint:ignore annotation.
type ignoreDirective struct {
	rules  []string // rule IDs the directive suppresses
	reason string   // mandatory justification
	line   int      // line the directive appears on
	pos    token.Pos
}

// parseIgnores extracts every //lint:ignore directive from a file,
// keyed by the line it annotates. Malformed directives (missing rule
// or reason) are reported as findings under the rule ID "ignore".
func parseIgnores(fset *token.FileSet, file *ast.File, report func(Finding)) map[int][]ignoreDirective {
	out := map[int][]ignoreDirective{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimPrefix(c.Text, ignorePrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //lint:ignorefoo — not ours
			}
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				report(Finding{
					Rule:     "ignore",
					Severity: SeverityError,
					File:     pos.Filename,
					Line:     pos.Line,
					Col:      pos.Column,
					Message:  "malformed //lint:ignore directive: want \"//lint:ignore <rule>[,<rule>...] <reason>\"",
				})
				continue
			}
			rules := strings.Split(fields[0], ",")
			known := map[string]bool{}
			for _, a := range Analyzers() {
				known[a.Name] = true
			}
			bad := false
			for _, r := range rules {
				if !known[r] {
					report(Finding{
						Rule:     "ignore",
						Severity: SeverityError,
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  fmt.Sprintf("//lint:ignore names unknown rule %q", r),
					})
					bad = true
				}
			}
			if bad {
				continue
			}
			d := ignoreDirective{
				rules:  rules,
				reason: strings.Join(fields[1:], " "),
				line:   pos.Line,
				pos:    c.Pos(),
			}
			out[d.line] = append(out[d.line], d)
		}
	}
	return out
}

// suppressed reports whether a finding at line is covered by a
// directive for its rule on the same line or the line directly above.
func suppressed(f Finding, ignores map[int][]ignoreDirective) bool {
	for _, line := range []int{f.Line, f.Line - 1} {
		for _, d := range ignores[line] {
			for _, r := range d.rules {
				if r == f.Rule {
					return true
				}
			}
		}
	}
	return false
}
