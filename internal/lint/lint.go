// Package lint is a stdlib-only static-analysis framework enforcing the
// simulator's determinism, unit-safety and error-hygiene invariants —
// the properties the Go compiler cannot check but the reproduction
// depends on (DESIGN.md §3, golden tests in internal/core).
//
// The framework deliberately mirrors the shape of golang.org/x/tools'
// go/analysis (Analyzer, Pass, Reportf) without importing it: the repo
// carries no module dependencies, so the loader in load.go type-checks
// the tree with go/parser + go/types and the importers shipped in the
// standard library.
//
// Rules:
//
//	detrand    — no math/rand, time.Now/Since or os.Getenv inside
//	             simulation packages; draw from internal/rng instead.
//	detflow    — whole-program determinism taint: no call chain from a
//	             simulation entry point to a wall-clock, environment or
//	             ambient-randomness read through any helper in any
//	             package (baseline file for reviewed edges).
//	maporder   — no order-sensitive work (appends later left unsorted,
//	             output writes, RNG draws) inside range-over-map loops.
//	hotpath    — no allocation- or dispatch-inducing constructs inside
//	             functions annotated //atm:hotpath.
//	nilsafe    — exported methods on //atm:nilsafe handle types must
//	             guard a nil receiver before touching receiver state.
//	floatcmp   — no ==/!= between floating-point values outside tests;
//	             compare via internal/stats epsilon helpers.
//	unitsafety — no direct conversion between distinct internal/units
//	             types, and no +/- mixing of float64-stripped units.
//	errdrop    — no discarded error returns in cmd/ and internal/fsp.
//	ignore     — malformed or unknown //lint:ignore directives.
//
// Most rules inspect one package at a time (Analyzer.Run); detflow is a
// program rule (Analyzer.RunProgram) that sees every loaded package at
// once and walks the cross-package call graph built in callgraph.go.
//
// A finding is suppressed by an annotation on the same line, the line
// directly above it, or — for findings inside a multi-line simple
// statement (a long append/builder chain) — on or directly above the
// statement's opening line:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// The reason is mandatory; the framework reports malformed or
// unknown-rule directives under the rule ID "ignore".
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Severity classifies how a finding should be treated by a reader.
// Every finding, regardless of severity, fails the lint run: severity
// is reporting metadata, not an enforcement level.
type Severity string

const (
	// SeverityError marks invariant violations (nondeterminism,
	// dropped errors) that are bugs until proven otherwise.
	SeverityError Severity = "error"
	// SeverityWarn marks constructs that are sometimes legitimate but
	// must be annotated to pass (exact float compares, unit strips).
	SeverityWarn Severity = "warn"
)

// Analyzer is one lint rule: a name, documentation, a severity for its
// findings and either a per-package Run function or a whole-program
// RunProgram function (exactly one must be set).
type Analyzer struct {
	// Name is the rule ID reported with each finding and matched by
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description shown by `atmlint -list`.
	Doc string
	// Severity classifies the rule's findings.
	Severity Severity
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
	// RunProgram inspects every loaded package at once — the hook for
	// call-graph rules that must see cross-package flows.
	RunProgram func(*ProgramPass)
}

// ProgramPass carries every analyzed package through one whole-program
// analyzer.
type ProgramPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Pkgs are all analyzed packages, sorted by import path.
	Pkgs []*Package
	// Config is the run configuration.
	Config *Config
	// Root is the absolute module root (for root-relative side files
	// like the detflow baseline).
	Root string
	// WholeProgram is true when Pkgs is the entire module — the only
	// mode in which completeness findings (stale baseline entries) are
	// meaningful.
	WholeProgram bool

	report func(Finding)
}

// Reportf records a finding at pos, mirroring Pass.Reportf.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Finding{
		Rule:     p.Analyzer.Name,
		Severity: p.Analyzer.Severity,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFile records a finding against a plain (non-Go) file, such as
// the detflow baseline.
func (p *ProgramPass) ReportFile(file string, line int, format string, args ...any) {
	p.report(Finding{
		Rule:     p.Analyzer.Name,
		Severity: p.Analyzer.Severity,
		File:     file,
		Line:     line,
		Col:      1,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's syntax trees, sorted by filename.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's results for Files.
	Info *types.Info
	// Config is the run configuration (package scopes, module path).
	Config *Config

	report func(Finding)
}

// Reportf records a finding at pos. Suppression by //lint:ignore
// directives is applied by the runner, not here.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Finding{
		Rule:     p.Analyzer.Name,
		Severity: p.Analyzer.Severity,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported rule violation.
type Finding struct {
	Rule     string   `json:"rule"`
	Severity Severity `json:"severity"`
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Message  string   `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// sortFindings orders findings deterministically: by file, line,
// column, rule, then message. Two runs over the same tree must render
// byte-identical output (the tool polices nondeterminism; it cannot
// exhibit it).
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// Config scopes the rules to the packages they police. The zero value
// is not useful; call DefaultConfig for the repository's settings.
type Config struct {
	// ModulePath is the module's import path ("repro").
	ModulePath string
	// SimPackages are the import paths detrand treats as simulation
	// code, where wall-clock reads and ambient randomness are banned.
	SimPackages []string
	// ErrPackages are import-path prefixes where errdrop polices
	// discarded errors (exact path, or prefix when ending in "/").
	ErrPackages []string
	// UnitsPackage is the import path of the typed-quantities package
	// whose types unitsafety protects.
	UnitsPackage string
	// RNGPackage is the import path of the blessed deterministic RNG;
	// detrand allowlists it and maporder treats draws from it as
	// order-sensitive sinks.
	RNGPackage string
	// TestdataPrefix puts lint's own fixture packages (which live
	// under a testdata directory and are skipped by module walks) in
	// scope for every path-scoped rule, so `atmlint <fixture-dir>`
	// exercises all analyzers.
	TestdataPrefix string
	// DetflowBaseline is the module-root-relative path of the reviewed
	// baseline of intentional determinism-taint edges. Empty disables
	// baseline handling (fixture runs).
	DetflowBaseline string
}

// DefaultConfig returns the repository's lint scope.
func DefaultConfig() *Config {
	return &Config{
		ModulePath: "repro",
		SimPackages: []string{
			"repro/internal/chip",
			"repro/internal/cpm",
			"repro/internal/dpll",
			"repro/internal/pdn",
			"repro/internal/silicon",
			"repro/internal/charact",
			"repro/internal/tuning",
			"repro/internal/fault",
			"repro/internal/manage",
			"repro/internal/sched",
			"repro/internal/predict",
			"repro/internal/workload",
			"repro/internal/thermal",
			"repro/internal/obs",
			"repro/internal/fleet",
			"repro/internal/guard",
			"repro/internal/lifetime",
			"repro/internal/sentinel",
			"repro/internal/platform",
			"repro/internal/dc",
		},
		ErrPackages: []string{
			"repro/cmd/",
			"repro/internal/fsp",
		},
		UnitsPackage:    "repro/internal/units",
		RNGPackage:      "repro/internal/rng",
		TestdataPrefix:  "repro/internal/lint/testdata/",
		DetflowBaseline: "internal/lint/detflow_baseline.txt",
	}
}

// isSimPackage reports whether path is one of the simulation packages.
func (c *Config) isSimPackage(path string) bool {
	if c.isTestdata(path) {
		return true
	}
	for _, p := range c.SimPackages {
		if path == p {
			return true
		}
	}
	return false
}

// isErrPackage reports whether errdrop polices path.
func (c *Config) isErrPackage(path string) bool {
	if c.isTestdata(path) {
		return true
	}
	for _, p := range c.ErrPackages {
		if strings.HasSuffix(p, "/") {
			if strings.HasPrefix(path, p) {
				return true
			}
		} else if path == p {
			return true
		}
	}
	return false
}

// isTestdata reports whether path is a lint fixture package.
func (c *Config) isTestdata(path string) bool {
	return c.TestdataPrefix != "" && strings.HasPrefix(path, c.TestdataPrefix)
}

// Analyzers returns every registered rule, sorted by name.
func Analyzers() []*Analyzer {
	as := []*Analyzer{
		DetRand,
		DetFlow,
		ErrDrop,
		FloatCmp,
		HotPath,
		MapOrder,
		NilSafe,
		UnitSafety,
	}
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}

// SelectAnalyzers resolves a comma-separated rule list ("" selects
// every rule) against the registry, preserving the sorted order.
func SelectAnalyzers(rules string) ([]*Analyzer, error) {
	all := Analyzers()
	if rules == "" {
		return all, nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	picked := map[string]bool{}
	for _, r := range strings.Split(rules, ",") {
		r = strings.TrimSpace(r)
		if r == "" {
			continue
		}
		if byName[r] == nil {
			return nil, fmt.Errorf("lint: unknown rule %q", r)
		}
		picked[r] = true
	}
	var out []*Analyzer
	for _, a := range all {
		if picked[a.Name] {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: empty rule selection %q", rules)
	}
	return out, nil
}

// ---- //lint:ignore directives ----

const ignorePrefix = "//lint:ignore"

// ignoreDirective is one parsed //lint:ignore annotation.
type ignoreDirective struct {
	rules  []string // rule IDs the directive suppresses
	reason string   // mandatory justification
	line   int      // line the directive appears on
	pos    token.Pos
}

// parseIgnores extracts every //lint:ignore directive from a file,
// keyed by the line it annotates. Malformed directives (missing rule
// or reason) are reported as findings under the rule ID "ignore".
func parseIgnores(fset *token.FileSet, file *ast.File, report func(Finding)) map[int][]ignoreDirective {
	out := map[int][]ignoreDirective{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimPrefix(c.Text, ignorePrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //lint:ignorefoo — not ours
			}
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				report(Finding{
					Rule:     "ignore",
					Severity: SeverityError,
					File:     pos.Filename,
					Line:     pos.Line,
					Col:      pos.Column,
					Message:  "malformed //lint:ignore directive: want \"//lint:ignore <rule>[,<rule>...] <reason>\"",
				})
				continue
			}
			rules := strings.Split(fields[0], ",")
			known := map[string]bool{}
			for _, a := range Analyzers() {
				known[a.Name] = true
			}
			bad := false
			for _, r := range rules {
				if !known[r] {
					report(Finding{
						Rule:     "ignore",
						Severity: SeverityError,
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  fmt.Sprintf("//lint:ignore names unknown rule %q", r),
					})
					bad = true
				}
			}
			if bad {
				continue
			}
			d := ignoreDirective{
				rules:  rules,
				reason: strings.Join(fields[1:], " "),
				line:   pos.Line,
				pos:    c.Pos(),
			}
			out[d.line] = append(out[d.line], d)
		}
	}
	return out
}

// fileIgnores is the suppression context of one source file: its
// parsed directives keyed by line, plus the statement anchors that let
// a directive on the opening line of a multi-line statement cover
// findings on the statement's continuation lines.
type fileIgnores struct {
	directives map[int][]ignoreDirective
	anchors    map[int]int // continuation line → statement opening line
}

// stmtAnchors maps every continuation line of a multi-line *simple*
// statement (assignment, expression, return, defer, go, send, decl) to
// the statement's opening line. Block-bearing statements (if, for,
// switch, func) are deliberately excluded: a directive on `if` must not
// blanket-suppress its whole body. Inner statements win, so a one-line
// statement inside a multi-line one anchors to itself.
func stmtAnchors(fset *token.FileSet, file *ast.File) map[int]int {
	anchors := map[int]int{}
	mark := func(n ast.Node) {
		start := fset.Position(n.Pos()).Line
		end := fset.Position(n.End()).Line
		for line := start + 1; line <= end; line++ {
			anchors[line] = start
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt, *ast.ExprStmt, *ast.ReturnStmt,
			*ast.DeferStmt, *ast.GoStmt, *ast.SendStmt,
			*ast.IncDecStmt, *ast.DeclStmt:
			mark(s.(ast.Node))
		case *ast.ValueSpec: // package-level var initializers
			mark(s)
		}
		return true
	})
	return anchors
}

// suppressed reports whether a finding is covered by a directive for
// its rule on the same line, the line directly above, or (via the
// statement anchors) on or directly above the opening line of the
// multi-line statement containing it.
func suppressed(f Finding, ignores map[string]*fileIgnores) bool {
	fi := ignores[f.File]
	if fi == nil {
		return false
	}
	lines := []int{f.Line, f.Line - 1}
	if anchor, ok := fi.anchors[f.Line]; ok {
		lines = append(lines, anchor, anchor-1)
	}
	for _, line := range lines {
		for _, d := range fi.directives[line] {
			for _, r := range d.rules {
				if r == f.Rule {
					return true
				}
			}
		}
	}
	return false
}
