package lint

import (
	"go/ast"
	"go/types"
)

// ErrDrop polices discarded error returns in the operator-facing
// layers — cmd/ and internal/fsp — where a swallowed error means a
// silently wrong table, a half-written CSV, or a service-processor
// session that dies without a trace. Three shapes are flagged:
//
//	f()          // bare call, error unchecked
//	defer f()    // deferred call, error unchecked
//	_ = f()      // error explicitly discarded
//
// fmt.Print/Printf/Println, fmt.Fprint* to os.Stdout/os.Stderr (CLI
// chatter with nowhere to report a failure) and methods on
// strings.Builder / bytes.Buffer (documented never to return errors)
// are allowlisted.
var ErrDrop = &Analyzer{
	Name:     "errdrop",
	Doc:      "forbid discarded error returns in cmd/ and internal/fsp",
	Severity: SeverityError,
	Run:      runErrDrop,
}

func runErrDrop(pass *Pass) {
	if !pass.Config.isErrPackage(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					checkDroppedCall(pass, call, "unchecked")
				}
			case *ast.DeferStmt:
				checkDroppedCall(pass, s.Call, "dropped by defer")
			case *ast.GoStmt:
				checkDroppedCall(pass, s.Call, "dropped by go statement")
			case *ast.AssignStmt:
				checkBlankErrAssign(pass, s)
			}
			return true
		})
	}
}

// checkDroppedCall reports a call whose error result nobody receives.
func checkDroppedCall(pass *Pass, call *ast.CallExpr, how string) {
	if !returnsError(pass, call) || errAllowlisted(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "error returned by %s %s: handle it or discard with an annotated _ =",
		calleeString(call), how)
}

// checkBlankErrAssign reports `_ = f()` style explicit discards of an
// error-typed value.
func checkBlankErrAssign(pass *Pass, s *ast.AssignStmt) {
	report := func(pos ast.Expr) {
		pass.Reportf(pos.Pos(), "error discarded with blank assignment: handle it or annotate with //lint:ignore errdrop <reason>")
	}
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// n-ary result: _ positions line up with the call's tuple.
		call, ok := s.Rhs[0].(*ast.CallExpr)
		if !ok || errAllowlisted(pass, call) {
			return
		}
		tuple, ok := pass.Info.TypeOf(call).(*types.Tuple)
		if !ok || tuple.Len() != len(s.Lhs) {
			return
		}
		for i, lhs := range s.Lhs {
			if isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
				report(lhs)
			}
		}
		return
	}
	for i, lhs := range s.Lhs {
		if !isBlank(lhs) || i >= len(s.Rhs) {
			continue
		}
		if call, ok := s.Rhs[i].(*ast.CallExpr); ok && errAllowlisted(pass, call) {
			continue
		}
		if isErrorType(pass.Info.TypeOf(s.Rhs[i])) {
			report(lhs)
		}
	}
}

func isBlank(e ast.Expr) bool {
	ident, ok := e.(*ast.Ident)
	return ok && ident.Name == "_"
}

// returnsError reports whether any of the call's results is an error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.Info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// errAllowlisted exempts printing to the standard streams and
// never-erroring builders. fmt.Fprint* to any other writer (a file, a
// connection) stays flagged: those errors are real.
var allowedFmtFuncs = map[string]bool{"Print": true, "Printf": true, "Println": true}
var stdStreamFmtFuncs = map[string]bool{"Fprint": true, "Fprintf": true, "Fprintln": true}

func errAllowlisted(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if ident, ok := sel.X.(*ast.Ident); ok {
		if pkgName, ok := pass.Info.Uses[ident].(*types.PkgName); ok {
			if pkgName.Imported().Path() != "fmt" {
				return false
			}
			if allowedFmtFuncs[sel.Sel.Name] {
				return true
			}
			return stdStreamFmtFuncs[sel.Sel.Name] && len(call.Args) > 0 &&
				isStdStream(pass, call.Args[0])
		}
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok {
		return false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// isStdStream reports whether e is the os.Stdout or os.Stderr selector.
func isStdStream(pass *Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Stdout" && sel.Sel.Name != "Stderr") {
		return false
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.Info.Uses[ident].(*types.PkgName)
	return ok && pkgName.Imported().Path() == "os"
}

// calleeString renders the called expression for the finding message.
func calleeString(call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}
