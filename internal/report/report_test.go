package report

import (
	"errors"
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:  "Sample",
		Header: []string{"core", "freq (MHz)"},
		Note:   "a note",
	}
	t.AddRow("P0C0", "4991")
	t.AddRow("P0C7", "4699")
	return t
}

func TestRenderAlignment(t *testing.T) {
	var sb strings.Builder
	if err := sample().Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(out, "\n")
	// Title, underline, header, separator, two rows, note.
	if lines[0] != "Sample" {
		t.Errorf("title line = %q", lines[0])
	}
	if lines[1] != "======" {
		t.Errorf("underline = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "core ") {
		t.Errorf("header = %q", lines[2])
	}
	// Columns align: "freq (MHz)" starts at the same offset in header
	// and rows.
	off := strings.Index(lines[2], "freq")
	if off < 0 {
		t.Fatal("no freq column")
	}
	if lines[4][off] != '4' {
		t.Errorf("row misaligned: %q", lines[4])
	}
	if !strings.Contains(out, "note: a note") {
		t.Error("note missing")
	}
}

func TestRenderNoHeader(t *testing.T) {
	tbl := &Table{}
	tbl.AddRow("just", "cells")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "just") {
		t.Error("row missing")
	}
}

func TestRenderCSV(t *testing.T) {
	var sb strings.Builder
	if err := sample().RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := []string{"# Sample", "core,freq (MHz)", "P0C0,4991", "# a note"}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("CSV missing %q:\n%s", w, out)
		}
	}
}

func TestCSVQuoting(t *testing.T) {
	tbl := &Table{Header: []string{"a"}}
	tbl.AddRow(`va"l,ue`)
	var sb strings.Builder
	if err := tbl.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"va""l,ue"`) {
		t.Errorf("quoting wrong: %s", sb.String())
	}
}

func TestArtifactRender(t *testing.T) {
	a := &Artifact{ID: "figX", Caption: "cap", Tables: []*Table{sample(), sample()}}
	var sb strings.Builder
	if err := a.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "[figX] cap") {
		t.Errorf("artifact header wrong: %q", out[:20])
	}
	if strings.Count(out, "Sample") != 2 {
		t.Error("not all tables rendered")
	}
	sb.Reset()
	if err := a.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "# [figX] cap") {
		t.Error("CSV artifact header missing")
	}
}

// failWriter errors after n writes, to exercise error propagation.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

func TestRenderPropagatesWriteErrors(t *testing.T) {
	for budget := 0; budget < 7; budget++ {
		if err := sample().Render(&failWriter{n: budget}); err == nil {
			t.Errorf("Render with %d-write budget did not error", budget)
		}
	}
	if err := sample().RenderCSV(&failWriter{n: 0}); err == nil {
		t.Error("RenderCSV did not propagate the error")
	}
}

func TestFormatters(t *testing.T) {
	if F(1234.567, 1) != "1234.6" {
		t.Errorf("F = %q", F(1234.567, 1))
	}
	if F(2, 0) != "2" {
		t.Errorf("F = %q", F(2, 0))
	}
	if Pct(0.061) != "6.1%" {
		t.Errorf("Pct = %q", Pct(0.061))
	}
	if Pct(-0.015) != "-1.5%" {
		t.Errorf("Pct = %q", Pct(-0.015))
	}
}

func TestUnicodeWidths(t *testing.T) {
	tbl := &Table{Header: []string{"θ", "freq"}}
	tbl.AddRow("1", "4600")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	// The rune-width padding must not explode on multibyte headers.
	lines := strings.Split(sb.String(), "\n")
	if !strings.HasPrefix(lines[0], "θ") {
		t.Errorf("header = %q", lines[0])
	}
}
