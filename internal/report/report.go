// Package report renders experiment results as aligned text tables and
// CSV — the formats cmd/atmfigures and the benchmark harness emit so
// every table and figure of the paper can be regenerated and diffed.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Note is a free-form caption printed under the table (paper
	// comparison, caveats).
	Note string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len([]rune(t.Title)))); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = pad(c, w)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if len(t.Header) > 0 {
		if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
			return err
		}
		seps := make([]string, len(t.Header))
		for i := range seps {
			seps[i] = strings.Repeat("-", widths[i])
		}
		if _, err := fmt.Fprintln(w, line(seps)); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "note: %s\n", t.Note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderCSV writes the table as CSV (header + rows; title and note as
// comment lines).
func (t *Table) RenderCSV(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
			return err
		}
	}
	if len(t.Header) > 0 {
		if _, err := fmt.Fprintln(w, csvLine(t.Header)); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, csvLine(row)); err != nil {
			return err
		}
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Note); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	r := []rune(s)
	if len(r) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(r))
}

func csvLine(cells []string) string {
	out := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		out[i] = c
	}
	return strings.Join(out, ",")
}

// Artifact is one regenerated table or figure: an identifier tying it to
// the paper plus its rendered data.
type Artifact struct {
	// ID is the paper label, e.g. "table1", "fig7".
	ID string
	// Caption describes what the paper shows there.
	Caption string
	// Tables hold the regenerated data (a figure renders as one table
	// per panel/series group).
	Tables []*Table
}

// Render writes the artifact as text.
func (a *Artifact) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "[%s] %s\n\n", a.ID, a.Caption); err != nil {
		return err
	}
	for _, t := range a.Tables {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// RenderCSV writes the artifact's tables as CSV blocks.
func (a *Artifact) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# [%s] %s\n", a.ID, a.Caption); err != nil {
		return err
	}
	for _, t := range a.Tables {
		if err := t.RenderCSV(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// F formats a float with the given decimals — the single formatting
// helper the experiment code uses for numeric cells.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
