// Package thermal is the lumped thermal model of one processor package:
// a single thermal resistance from junction to ambient, a first-order
// time constant for transients, and a leakage-power feedback term.
//
// The paper maintains die temperature under 70 °C in all experiments
// (Sec. VII-D) and reports temperature playing only a modest role in
// timing (Sec. VII-B), so the model's job is (a) to reproduce the
// 160 W → 70 °C operating point of the stress tests and (b) to close the
// small leakage feedback loop in the chip power solver.
package thermal

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// Params describes one package's thermal path.
type Params struct {
	// AmbientC is the inlet air temperature.
	AmbientC units.Celsius
	// ResistanceCPerW is the junction-to-ambient thermal resistance.
	// 0.28 °C/W puts a 160 W chip at 70 °C with a 25 °C inlet — the
	// paper's stress-test operating point.
	ResistanceCPerW float64
	// TimeConstantS is the first-order thermal time constant.
	TimeConstantS float64
	// TjMaxC is the thermal envelope the experiments must respect.
	TjMaxC units.Celsius
}

// DefaultParams returns the package constants used for the POWER7+
// model.
func DefaultParams() Params {
	return Params{
		AmbientC:        25,
		ResistanceCPerW: 0.28,
		TimeConstantS:   8,
		TjMaxC:          70,
	}
}

// Validate reports whether the parameter set is usable.
func (p Params) Validate() error {
	switch {
	case p.ResistanceCPerW <= 0:
		return fmt.Errorf("thermal: non-positive resistance %g", p.ResistanceCPerW)
	case p.TimeConstantS <= 0:
		return fmt.Errorf("thermal: non-positive time constant %g", p.TimeConstantS)
	case p.TjMaxC <= p.AmbientC:
		return fmt.Errorf("thermal: TjMax %v not above ambient %v", p.TjMaxC, p.AmbientC)
	}
	return nil
}

// SteadyTemp returns the junction temperature at sustained power P.
func (p Params) SteadyTemp(power units.Watt) units.Celsius {
	return p.AmbientC + units.Celsius(p.ResistanceCPerW*float64(power))
}

// WithinEnvelope reports whether sustained power P keeps the junction
// under TjMax.
func (p Params) WithinEnvelope(power units.Watt) bool {
	return p.SteadyTemp(power) <= p.TjMaxC
}

// MaxPower returns the sustained power that saturates the envelope.
func (p Params) MaxPower() units.Watt {
	return units.Watt(float64(p.TjMaxC-p.AmbientC) / p.ResistanceCPerW)
}

// State tracks a transient junction temperature.
type State struct {
	params Params
	temp   units.Celsius
}

// NewState returns a transient state starting at ambient.
func NewState(p Params) *State {
	return &State{params: p, temp: p.AmbientC}
}

// Temp returns the current junction temperature.
func (s *State) Temp() units.Celsius { return s.temp }

// Step advances the first-order thermal state by dt seconds under the
// given power and returns the new temperature.
func (s *State) Step(power units.Watt, dtSeconds float64) units.Celsius {
	target := s.params.SteadyTemp(power)
	alpha := 1 - math.Exp(-dtSeconds/s.params.TimeConstantS)
	s.temp += units.Celsius(alpha * float64(target-s.temp))
	return s.temp
}

// LeakageScale returns the multiplicative leakage-power factor at
// junction temperature t relative to the leakage at ambient:
// sub-threshold leakage grows roughly exponentially, ~1.9× over a
// 25→70 °C swing at this coefficient.
func (p Params) LeakageScale(t units.Celsius) float64 {
	return math.Exp(0.0143 * float64(t-p.AmbientC))
}
