package thermal

import (
	"math"
	"testing"

	"repro/internal/units"
)

func TestDefaultParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestValidateCatchesBadness(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.ResistanceCPerW = 0 },
		func(p *Params) { p.TimeConstantS = 0 },
		func(p *Params) { p.TjMaxC = p.AmbientC },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

// TestStressOperatingPoint pins the paper's corner: the 160 W stress
// test runs at ≈70 °C (Sec. VII-A) and stays inside the envelope.
func TestStressOperatingPoint(t *testing.T) {
	p := DefaultParams()
	temp := p.SteadyTemp(160)
	if math.Abs(float64(temp-70)) > 2 {
		t.Errorf("T(160W) = %v, want ≈70 °C", temp)
	}
	if !p.WithinEnvelope(160) {
		t.Error("160 W outside the envelope")
	}
	if p.WithinEnvelope(200) {
		t.Error("200 W wrongly inside the envelope")
	}
}

func TestMaxPowerConsistent(t *testing.T) {
	p := DefaultParams()
	pm := p.MaxPower()
	if got := p.SteadyTemp(pm); math.Abs(float64(got-p.TjMaxC)) > 1e-9 {
		t.Errorf("T(MaxPower) = %v, want TjMax %v", got, p.TjMaxC)
	}
	if !p.WithinEnvelope(pm) {
		t.Error("MaxPower not within envelope")
	}
}

func TestSteadyTempLinear(t *testing.T) {
	p := DefaultParams()
	t50 := p.SteadyTemp(50)
	t100 := p.SteadyTemp(100)
	t150 := p.SteadyTemp(150)
	if math.Abs(float64((t150-t100)-(t100-t50))) > 1e-9 {
		t.Error("steady temperature not linear in power")
	}
}

func TestTransientConverges(t *testing.T) {
	p := DefaultParams()
	s := NewState(p)
	if s.Temp() != p.AmbientC {
		t.Errorf("initial temp %v, want ambient", s.Temp())
	}
	var power units.Watt = 120
	for i := 0; i < 200; i++ {
		s.Step(power, 1)
	}
	want := p.SteadyTemp(power)
	if math.Abs(float64(s.Temp()-want)) > 0.1 {
		t.Errorf("transient settled at %v, want %v", s.Temp(), want)
	}
}

func TestTransientIsMonotoneApproach(t *testing.T) {
	p := DefaultParams()
	s := NewState(p)
	prev := s.Temp()
	for i := 0; i < 60; i++ {
		cur := s.Step(160, 0.5)
		if cur < prev-1e-9 {
			t.Fatalf("heating transient decreased at step %d", i)
		}
		prev = cur
	}
	// Cooling after load removal.
	for i := 0; i < 60; i++ {
		cur := s.Step(0, 0.5)
		if cur > prev+1e-9 {
			t.Fatalf("cooling transient increased at step %d", i)
		}
		prev = cur
	}
}

func TestLeakageScale(t *testing.T) {
	p := DefaultParams()
	if got := p.LeakageScale(p.AmbientC); math.Abs(got-1) > 1e-12 {
		t.Errorf("leakage scale at ambient = %g, want 1", got)
	}
	hot := p.LeakageScale(70)
	if hot < 1.5 || hot > 2.5 {
		t.Errorf("leakage scale at 70 °C = %g, want ~1.9", hot)
	}
	if p.LeakageScale(50) >= hot {
		t.Error("leakage not increasing with temperature")
	}
}
