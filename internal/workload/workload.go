// Package workload is the behavioural workload library of the
// reproduction: every application the paper runs — the three
// micro-benchmarks, the SPEC CPU 2017 and PARSEC 3.0 programs, the deep
// learning inference tasks of Table II, and the test-time stressmarks —
// reduced to the axes that matter to an ATM system.
//
// The paper itself characterizes each workload by exactly three
// properties, and those are what a profile carries:
//
//   - power draw (dynamic capacitance): sets the DC voltage drop and
//     hence every core's settled frequency (Eq. 1);
//   - di/dt stress score: how hard the program's activity swings push
//     the fine-tuned control loop (the rows of Fig. 10) — pipeline
//     flushes, bursty issue patterns and synchronization all raise it;
//   - memory intensity: how much of the program's time is insensitive
//     to core frequency (the slopes of Fig. 12b, the columns of
//     Table II).
//
// Real traces and binaries are unavailable (and would be POWER ISA
// anyway); the calibration targets are the paper's published orderings:
// x264 and ferret stress ATM most, gcc and leela least (Fig. 9/10), mcf
// is the memory-bound extreme (Fig. 12b), streamcluster draws little
// power even at high frequency (Sec. VII-D), lu_cb is power-hungry.
package workload

import (
	"fmt"
	"sort"
)

// Suite labels where a workload comes from.
type Suite string

// The workload suites of the paper's methodology (Fig. 6).
const (
	SuiteIdle       Suite = "idle"
	SuiteUBench     Suite = "ubench"
	SuiteSPEC       Suite = "spec2017"
	SuitePARSEC     Suite = "parsec3"
	SuiteDNN        Suite = "dnn"
	SuiteStressmark Suite = "stressmark"
)

// Role is the Table II scheduling classification.
type Role string

// Roles: critical workloads are latency-sensitive and user-facing;
// background workloads tolerate throttling; utility workloads exist for
// characterization only and are never scheduled by the manager.
const (
	RoleCritical   Role = "critical"
	RoleBackground Role = "background"
	RoleUtility    Role = "utility"
)

// Profile is one workload's behavioural description.
type Profile struct {
	// Name is the canonical lowercase benchmark name.
	Name string
	// Suite is the benchmark's origin.
	Suite Suite
	// Role is the Table II classification.
	Role Role
	// CdynRel is the per-core dynamic-capacitance draw relative to
	// daxpy (the highest-power kernel, 1.0).
	CdynRel float64
	// MemIntensity ∈ [0,1] is the fraction of runtime that does not
	// scale with core frequency at the 4.2 GHz baseline (the Fig. 12b
	// slope). The paper's critical inference tasks are cache-resident
	// and gain nearly the full frequency ratio.
	MemIntensity float64
	// MemInterference marks the Table II "memory intensive" rows: the
	// scheduler never co-locates two such workloads, a bandwidth /
	// cache-footprint property distinct from frequency sensitivity.
	MemInterference bool
	// StressScore ∈ [0,1] is the di/dt pressure on a fine-tuned ATM
	// loop; 1 is the most stressful profiled workload.
	StressScore float64
	// HasChecker reports whether the benchmark ships a result checker
	// the methodology can use to detect silent data corruption.
	HasChecker bool
	// BaselineLatencyMs, when non-zero, is the task latency at the
	// 4.2 GHz static-margin baseline (only meaningful for the
	// latency-style critical tasks, e.g. SqueezeNet's 80 ms inference).
	BaselineLatencyMs float64
}

// RelPerf returns the workload's performance at frequency fMHz relative
// to the static-margin baseline frequency baseMHz, under the
// memory-boundness model of Fig. 12b: runtime = mem + (1−mem)·(base/f),
// so memory-bound programs gain less from frequency.
func (p Profile) RelPerf(fMHz, baseMHz float64) float64 {
	if fMHz <= 0 || baseMHz <= 0 {
		return 0
	}
	denom := p.MemIntensity + (1-p.MemIntensity)*(baseMHz/fMHz)
	return 1 / denom
}

// LatencyMs returns the task latency at frequency fMHz given the
// baseline latency at baseMHz. Zero when the profile has no latency
// metric.
func (p Profile) LatencyMs(fMHz, baseMHz float64) float64 {
	if p.BaselineLatencyMs == 0 {
		return 0
	}
	rp := p.RelPerf(fMHz, baseMHz)
	if rp <= 0 {
		return 0
	}
	return p.BaselineLatencyMs / rp
}

// MemIntensive reports the Table II row: whether co-locating two of
// these risks memory-subsystem interference.
func (p Profile) MemIntensive() bool { return p.MemInterference }

// Validate reports whether the profile is well-formed.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: empty name")
	case p.CdynRel < 0 || p.CdynRel > 1.5:
		return fmt.Errorf("workload %s: CdynRel %g outside [0,1.5]", p.Name, p.CdynRel)
	case p.MemIntensity < 0 || p.MemIntensity > 1:
		return fmt.Errorf("workload %s: MemIntensity %g outside [0,1]", p.Name, p.MemIntensity)
	case p.StressScore < 0 || p.StressScore > 1.2:
		return fmt.Errorf("workload %s: StressScore %g outside [0,1.2]", p.Name, p.StressScore)
	}
	return nil
}

// UBenchStressScore is the stress score shared by the three
// micro-benchmarks: they exercise the functional units with smooth,
// controlled behaviour and create little di/dt activity (Sec. V-A).
const UBenchStressScore = 0.12

// library is the profile registry, keyed by name.
var library = map[string]Profile{}

func register(p Profile) Profile {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if _, dup := library[p.Name]; dup {
		panic("workload: duplicate profile " + p.Name)
	}
	library[p.Name] = p
	return p
}

// Idle is the no-application system-idle environment.
var Idle = register(Profile{
	Name: "idle", Suite: SuiteIdle, Role: RoleUtility,
	CdynRel: 0.10, MemIntensity: 0, StressScore: 0, HasChecker: false,
})

// The three micro-benchmarks of Sec. V-A. Together they cover the
// core's control/branch/integer units (coremark), the floating point
// unit (daxpy) and the load-store unit and caches (stream).
var (
	Coremark = register(Profile{
		Name: "coremark", Suite: SuiteUBench, Role: RoleUtility,
		CdynRel: 0.72, MemIntensity: 0.05, StressScore: UBenchStressScore, HasChecker: true,
	})
	Daxpy = register(Profile{
		Name: "daxpy", Suite: SuiteUBench, Role: RoleUtility,
		CdynRel: 1.0, MemIntensity: 0.10, StressScore: UBenchStressScore, HasChecker: true,
	})
	Stream = register(Profile{
		Name: "stream", Suite: SuiteUBench, Role: RoleUtility,
		CdynRel: 0.62, MemIntensity: 0.95, StressScore: UBenchStressScore, MemInterference: true, HasChecker: true,
	})
)

// SPEC CPU 2017 workloads used in the paper's figures.
var (
	GCC = register(Profile{
		Name: "gcc", Suite: SuiteSPEC, Role: RoleBackground,
		CdynRel: 0.55, MemIntensity: 0.55, StressScore: 0.16, MemInterference: true, HasChecker: true,
	})
	MCF = register(Profile{
		Name: "mcf", Suite: SuiteSPEC, Role: RoleBackground,
		CdynRel: 0.45, MemIntensity: 0.90, StressScore: 0.50, MemInterference: true, HasChecker: true,
	})
	X264 = register(Profile{
		Name: "x264", Suite: SuiteSPEC, Role: RoleBackground,
		CdynRel: 0.85, MemIntensity: 0.15, StressScore: 1.00, HasChecker: true,
	})
	Leela = register(Profile{
		Name: "leela", Suite: SuiteSPEC, Role: RoleBackground,
		CdynRel: 0.55, MemIntensity: 0.10, StressScore: 0.14, HasChecker: true,
	})
	Exchange2 = register(Profile{
		Name: "exchange2", Suite: SuiteSPEC, Role: RoleBackground,
		CdynRel: 0.65, MemIntensity: 0.05, StressScore: 0.24, HasChecker: true,
	})
	Deepsjeng = register(Profile{
		Name: "deepsjeng", Suite: SuiteSPEC, Role: RoleBackground,
		CdynRel: 0.66, MemIntensity: 0.15, StressScore: 0.68, HasChecker: true,
	})
	XZ = register(Profile{
		Name: "xz", Suite: SuiteSPEC, Role: RoleBackground,
		CdynRel: 0.60, MemIntensity: 0.45, StressScore: 0.58, HasChecker: true,
	})
	Perlbench = register(Profile{
		Name: "perlbench", Suite: SuiteSPEC, Role: RoleBackground,
		CdynRel: 0.60, MemIntensity: 0.30, StressScore: 0.44, HasChecker: true,
	})
	Omnetpp = register(Profile{
		Name: "omnetpp", Suite: SuiteSPEC, Role: RoleBackground,
		CdynRel: 0.55, MemIntensity: 0.70, StressScore: 0.62, MemInterference: true, HasChecker: true,
	})
	Xalancbmk = register(Profile{
		Name: "xalancbmk", Suite: SuiteSPEC, Role: RoleBackground,
		CdynRel: 0.52, MemIntensity: 0.60, StressScore: 0.40, MemInterference: true, HasChecker: true,
	})
)

// PARSEC 3.0 workloads (lu_cb is from the bundled SPLASH-2x set).
var (
	Ferret = register(Profile{
		Name: "ferret", Suite: SuitePARSEC, Role: RoleCritical,
		CdynRel: 0.75, MemIntensity: 0.12, StressScore: 0.93, MemInterference: true, HasChecker: true,
		BaselineLatencyMs: 120,
	})
	Facesim = register(Profile{
		Name: "facesim", Suite: SuitePARSEC, Role: RoleBackground,
		CdynRel: 0.60, MemIntensity: 0.65, StressScore: 0.48, MemInterference: true, HasChecker: true,
	})
	LUCB = register(Profile{
		Name: "lu_cb", Suite: SuitePARSEC, Role: RoleBackground,
		CdynRel: 0.78, MemIntensity: 0.70, StressScore: 0.46, MemInterference: true, HasChecker: true,
	})
	Streamcluster = register(Profile{
		Name: "streamcluster", Suite: SuitePARSEC, Role: RoleBackground,
		CdynRel: 0.34, MemIntensity: 0.80, StressScore: 0.30, MemInterference: true, HasChecker: true,
	})
	Blackscholes = register(Profile{
		Name: "blackscholes", Suite: SuitePARSEC, Role: RoleBackground,
		CdynRel: 0.55, MemIntensity: 0.15, StressScore: 0.26, HasChecker: true,
	})
	Swaptions = register(Profile{
		Name: "swaptions", Suite: SuitePARSEC, Role: RoleBackground,
		CdynRel: 0.60, MemIntensity: 0.10, StressScore: 0.38, HasChecker: true,
	})
	Raytrace = register(Profile{
		Name: "raytrace", Suite: SuitePARSEC, Role: RoleBackground,
		CdynRel: 0.50, MemIntensity: 0.20, StressScore: 0.34, HasChecker: true,
	})
	Fluidanimate = register(Profile{
		Name: "fluidanimate", Suite: SuitePARSEC, Role: RoleCritical,
		CdynRel: 0.80, MemIntensity: 0.12, StressScore: 0.84, MemInterference: true, HasChecker: true,
		BaselineLatencyMs: 95,
	})
	Bodytrack = register(Profile{
		Name: "bodytrack", Suite: SuitePARSEC, Role: RoleCritical,
		CdynRel: 0.65, MemIntensity: 0.10, StressScore: 0.54, HasChecker: true,
		BaselineLatencyMs: 60,
	})
	Vips = register(Profile{
		Name: "vips", Suite: SuitePARSEC, Role: RoleCritical,
		CdynRel: 0.60, MemIntensity: 0.08, StressScore: 0.36, HasChecker: true,
		BaselineLatencyMs: 45,
	})
	Canneal = register(Profile{
		Name: "canneal", Suite: SuitePARSEC, Role: RoleBackground,
		CdynRel: 0.45, MemIntensity: 0.85, StressScore: 0.42, MemInterference: true, HasChecker: true,
	})
)

// Additional SPEC CPU 2017 floating-point workloads.
var (
	Povray = register(Profile{
		Name: "povray", Suite: SuiteSPEC, Role: RoleBackground,
		CdynRel: 0.68, MemIntensity: 0.10, StressScore: 0.42, HasChecker: true,
	})
	Imagick = register(Profile{
		Name: "imagick", Suite: SuiteSPEC, Role: RoleBackground,
		CdynRel: 0.72, MemIntensity: 0.15, StressScore: 0.38, HasChecker: true,
	})
	Nab = register(Profile{
		Name: "nab", Suite: SuiteSPEC, Role: RoleBackground,
		CdynRel: 0.66, MemIntensity: 0.25, StressScore: 0.30, HasChecker: true,
	})
	Fotonik3d = register(Profile{
		Name: "fotonik3d", Suite: SuiteSPEC, Role: RoleBackground,
		CdynRel: 0.55, MemIntensity: 0.85, StressScore: 0.44, MemInterference: true, HasChecker: true,
	})
	Roms = register(Profile{
		Name: "roms", Suite: SuiteSPEC, Role: RoleBackground,
		CdynRel: 0.60, MemIntensity: 0.70, StressScore: 0.40, MemInterference: true, HasChecker: true,
	})
	CactuBSSN = register(Profile{
		Name: "cactubssn", Suite: SuiteSPEC, Role: RoleBackground,
		CdynRel: 0.62, MemIntensity: 0.60, StressScore: 0.52, MemInterference: true, HasChecker: true,
	})
	Bwaves = register(Profile{
		Name: "bwaves", Suite: SuiteSPEC, Role: RoleBackground,
		CdynRel: 0.58, MemIntensity: 0.80, StressScore: 0.36, MemInterference: true, HasChecker: true,
	})
	LBM = register(Profile{
		Name: "lbm", Suite: SuiteSPEC, Role: RoleBackground,
		CdynRel: 0.62, MemIntensity: 0.90, StressScore: 0.48, MemInterference: true, HasChecker: true,
	})
	WRF = register(Profile{
		Name: "wrf", Suite: SuiteSPEC, Role: RoleBackground,
		CdynRel: 0.60, MemIntensity: 0.55, StressScore: 0.46, MemInterference: true, HasChecker: true,
	})
	Parest = register(Profile{
		Name: "parest", Suite: SuiteSPEC, Role: RoleBackground,
		CdynRel: 0.58, MemIntensity: 0.50, StressScore: 0.34, MemInterference: true, HasChecker: true,
	})
)

// Additional PARSEC 3.0 workloads.
var (
	Freqmine = register(Profile{
		Name: "freqmine", Suite: SuitePARSEC, Role: RoleBackground,
		CdynRel: 0.62, MemIntensity: 0.45, StressScore: 0.44, HasChecker: true,
	})
	Dedup = register(Profile{
		Name: "dedup", Suite: SuitePARSEC, Role: RoleBackground,
		CdynRel: 0.60, MemIntensity: 0.60, StressScore: 0.58, MemInterference: true, HasChecker: true,
	})
)

// Deep-learning inference tasks of Table II (user-facing, latency
// critical) plus the mlp training job (background).
var (
	SqueezeNet = register(Profile{
		Name: "squeezenet", Suite: SuiteDNN, Role: RoleCritical,
		CdynRel: 0.70, MemIntensity: 0.05, StressScore: 0.36, HasChecker: true,
		BaselineLatencyMs: 80, // Fig. 2: 80 ms at the static margin
	})
	ResNet = register(Profile{
		Name: "resnet", Suite: SuiteDNN, Role: RoleCritical,
		CdynRel: 0.75, MemIntensity: 0.15, StressScore: 0.46, MemInterference: true, HasChecker: true,
		BaselineLatencyMs: 210,
	})
	VGG19 = register(Profile{
		Name: "vgg19", Suite: SuiteDNN, Role: RoleCritical,
		CdynRel: 0.80, MemIntensity: 0.15, StressScore: 0.50, MemInterference: true, HasChecker: true,
		BaselineLatencyMs: 340,
	})
	Seq2Seq = register(Profile{
		Name: "seq2seq", Suite: SuiteDNN, Role: RoleCritical,
		CdynRel: 0.55, MemIntensity: 0.08, StressScore: 0.30, HasChecker: true,
		BaselineLatencyMs: 38,
	})
	Babi = register(Profile{
		Name: "babi", Suite: SuiteDNN, Role: RoleCritical,
		CdynRel: 0.50, MemIntensity: 0.08, StressScore: 0.26, HasChecker: true,
		BaselineLatencyMs: 22,
	})
	MLP = register(Profile{
		Name: "mlp", Suite: SuiteDNN, Role: RoleBackground,
		CdynRel: 0.60, MemIntensity: 0.60, StressScore: 0.32, MemInterference: true, HasChecker: true,
	})
)

// ByName returns the named profile.
func ByName(name string) (Profile, error) {
	p, ok := library[name]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return p, nil
}

// MustByName is ByName for static names; it panics on unknown names.
func MustByName(name string) Profile {
	p, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// All returns every registered profile sorted by name.
func All() []Profile {
	out := make([]Profile, 0, len(library))
	for _, p := range library {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// BySuite returns the profiles of one suite sorted by name.
func BySuite(s Suite) []Profile {
	var out []Profile
	for _, p := range All() {
		if p.Suite == s {
			out = append(out, p)
		}
	}
	return out
}

// UBench returns the three micro-benchmarks.
func UBench() []Profile { return BySuite(SuiteUBench) }

// Realistic returns the SPEC + PARSEC + DNN applications (the Sec. VI
// profiling set), sorted by name.
func Realistic() []Profile {
	var out []Profile
	for _, p := range All() {
		switch p.Suite {
		case SuiteSPEC, SuitePARSEC, SuiteDNN:
			out = append(out, p)
		}
	}
	return out
}

// ByRole returns the Table II classification column.
func ByRole(r Role) []Profile {
	var out []Profile
	for _, p := range Realistic() {
		if p.Role == r {
			out = append(out, p)
		}
	}
	return out
}

// Critical returns the latency-sensitive Table II workloads.
func Critical() []Profile { return ByRole(RoleCritical) }

// Background returns the throttle-tolerant Table II workloads.
func Background() []Profile { return ByRole(RoleBackground) }

// WorstStress returns the most stressful realistic workload — the one
// that defines the thread-worst configuration (x264 in the paper).
func WorstStress() Profile {
	ws := Realistic()[0]
	for _, p := range Realistic() {
		if p.StressScore > ws.StressScore {
			ws = p
		}
	}
	return ws
}
