package workload

import "fmt"

// Stressmark is a test-time worst-case generator (Sec. VII-A): a recipe
// that combines high sustained power with synchronized current swings to
// maximize both the DC voltage drop and the first-droop di/dt noise.
//
// The paper's voltage virus throttles every core's instruction issue to
// one out of every 128 cycles, synchronously, while 32 daxpy threads keep
// chip power at 160 W and 70 °C: the throttle creates a chip-wide
// synchronized power surge, the daxpy threads maximize the DC drop.
type Stressmark struct {
	// Profile is the behavioural profile the simulator schedules; the
	// stress score of a stressmark may exceed 1 (beyond the worst
	// profiled application) but the shipped virus is calibrated at 1.0
	// so the thread-worst configuration survives it, as measured in the
	// paper.
	Profile Profile
	// ThrottlePeriod is the issue-throttle period in cycles (128 in the
	// paper's virus); 0 means no throttling.
	ThrottlePeriod int
	// ThreadsPerCore is the SMT pressure applied (4 on POWER7+ = 32
	// threads on 8 cores).
	ThreadsPerCore int
	// Synchronized reports whether all cores align their surges —
	// what turns per-core noise into a chip-wide worst case.
	Synchronized bool
}

// VoltageVirus returns the paper's combined di/dt + power stress test.
func VoltageVirus() Stressmark {
	return Stressmark{
		Profile: Profile{
			Name:  "voltage-virus",
			Suite: SuiteStressmark,
			Role:  RoleUtility,
			// Full-rate daxpy power between throttle windows keeps the
			// chip at its thermal/electrical operating corner.
			CdynRel:      1.05,
			MemIntensity: 0.05,
			// Calibrated to the worst profiled application: the paper
			// measures that thread-worst configurations sustain the
			// virus, i.e. the virus does not exceed the profiled
			// worst-case envelope.
			StressScore: 1.0,
			HasChecker:  true,
		},
		ThrottlePeriod: 128,
		ThreadsPerCore: 4,
		Synchronized:   true,
	}
}

// PowerVirus returns a pure sustained-power stressmark (maximizes DC
// drop and temperature without the synchronized di/dt component).
func PowerVirus() Stressmark {
	return Stressmark{
		Profile: Profile{
			Name:         "power-virus",
			Suite:        SuiteStressmark,
			Role:         RoleUtility,
			CdynRel:      1.10,
			MemIntensity: 0.05,
			StressScore:  0.55,
			HasChecker:   true,
		},
		ThreadsPerCore: 4,
	}
}

// ISASuite returns the path-coverage stressmark: a vendor-style ISA
// verification sweep that touches every functional unit and corner
// timing path with moderate power.
func ISASuite() Stressmark {
	return Stressmark{
		Profile: Profile{
			Name:         "isa-suite",
			Suite:        SuiteStressmark,
			Role:         RoleUtility,
			CdynRel:      0.70,
			MemIntensity: 0.20,
			StressScore:  0.88,
			HasChecker:   true,
		},
		ThreadsPerCore: 1,
	}
}

// TestTimeSuite returns the full Sec. VII-A stress-test battery in the
// order the deployment procedure runs them.
func TestTimeSuite() []Stressmark {
	return []Stressmark{PowerVirus(), ISASuite(), VoltageVirus()}
}

// Validate reports whether the stressmark recipe is well-formed.
func (s Stressmark) Validate() error {
	if err := s.Profile.Validate(); err != nil {
		return err
	}
	if s.ThrottlePeriod < 0 {
		return fmt.Errorf("workload: %s negative throttle period", s.Profile.Name)
	}
	if s.ThreadsPerCore < 0 || s.ThreadsPerCore > 4 {
		return fmt.Errorf("workload: %s threads per core %d outside [0,4] (POWER7+ is 4-way SMT)",
			s.Profile.Name, s.ThreadsPerCore)
	}
	return nil
}

// CurrentStepAmps estimates the synchronized load-current step the
// stressmark produces on nCores cores at the given supply voltage and
// per-core dynamic power: the issue throttle swings each core between
// ~idle and full activity, so the step is nearly the full dynamic
// current of the participating cores.
func (s Stressmark) CurrentStepAmps(nCores int, perCoreDynW, vdd float64) float64 {
	if !s.Synchronized || s.ThrottlePeriod == 0 || vdd <= 0 {
		return 0
	}
	swing := 0.9 // issue throttle drops activity to ~1/128 ≈ 0
	return float64(nCores) * perCoreDynW * swing / vdd
}
