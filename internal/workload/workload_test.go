package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLibraryIntegrity(t *testing.T) {
	all := All()
	if len(all) < 25 {
		t.Fatalf("library has only %d profiles", len(all))
	}
	seen := map[string]bool{}
	for _, p := range all {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate %s", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("x264")
	if err != nil || p.Name != "x264" {
		t.Fatalf("ByName(x264) = %v, %v", p, err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustByName(unknown) did not panic")
		}
	}()
	MustByName("doom")
}

func TestUBenchSet(t *testing.T) {
	ub := UBench()
	if len(ub) != 3 {
		t.Fatalf("uBench set has %d members", len(ub))
	}
	names := map[string]bool{}
	for _, p := range ub {
		names[p.Name] = true
		if p.StressScore != UBenchStressScore {
			t.Errorf("%s stress %g, want the shared uBench score", p.Name, p.StressScore)
		}
	}
	for _, want := range []string{"coremark", "daxpy", "stream"} {
		if !names[want] {
			t.Errorf("missing uBench %s", want)
		}
	}
}

// TestTableIIPartition verifies the Table II structure: the realistic
// workloads partition into critical and background, and the paper's
// named examples land in the right cells.
func TestTableIIPartition(t *testing.T) {
	crit := map[string]bool{}
	for _, p := range Critical() {
		crit[p.Name] = true
	}
	bg := map[string]bool{}
	for _, p := range Background() {
		bg[p.Name] = true
	}
	for name := range crit {
		if bg[name] {
			t.Errorf("%s in both roles", name)
		}
	}
	if len(crit)+len(bg) != len(Realistic()) {
		t.Errorf("roles do not partition: %d + %d != %d", len(crit), len(bg), len(Realistic()))
	}
	// Table II spot checks.
	for _, name := range []string{"resnet", "vgg19", "ferret", "fluidanimate", "squeezenet", "seq2seq", "babi", "bodytrack", "vips"} {
		if !crit[name] {
			t.Errorf("%s should be critical", name)
		}
	}
	for _, name := range []string{"mlp", "gcc", "facesim", "lu_cb", "streamcluster", "blackscholes", "x264", "swaptions", "raytrace"} {
		if !bg[name] {
			t.Errorf("%s should be background", name)
		}
	}
	// Memory-interference cells.
	for _, name := range []string{"resnet", "vgg19", "ferret", "fluidanimate", "mlp", "gcc", "facesim", "lu_cb", "streamcluster"} {
		if !MustByName(name).MemIntensive() {
			t.Errorf("%s should be memory-intensive per Table II", name)
		}
	}
	for _, name := range []string{"squeezenet", "seq2seq", "babi", "bodytrack", "vips", "blackscholes", "x264", "swaptions", "raytrace"} {
		if MustByName(name).MemIntensive() {
			t.Errorf("%s should be non-intensive per Table II", name)
		}
	}
}

func TestStressOrderings(t *testing.T) {
	// Fig. 9/10: x264 and ferret top the stress ranking; gcc and leela
	// sit at the bottom.
	if WorstStress().Name != "x264" {
		t.Errorf("worst stress = %s, want x264", WorstStress().Name)
	}
	x, f := MustByName("x264"), MustByName("ferret")
	g, l := MustByName("gcc"), MustByName("leela")
	if !(x.StressScore >= f.StressScore && f.StressScore > 0.8) {
		t.Error("x264/ferret not at the top of the stress ranking")
	}
	if g.StressScore > 0.25 || l.StressScore > 0.25 {
		t.Error("gcc/leela not at the bottom of the stress ranking")
	}
}

func TestRelPerfProperties(t *testing.T) {
	const base = 4200.0
	for _, p := range All() {
		if got := p.RelPerf(base, base); math.Abs(got-1) > 1e-12 {
			t.Errorf("%s RelPerf at base = %g, want 1", p.Name, got)
		}
		if p.RelPerf(0, base) != 0 || p.RelPerf(base, 0) != 0 {
			t.Errorf("%s RelPerf degenerate inputs not 0", p.Name)
		}
		prev := 0.0
		for f := 3000.0; f <= 5500; f += 100 {
			rp := p.RelPerf(f, base)
			if rp <= prev {
				t.Fatalf("%s RelPerf not increasing at %g MHz", p.Name, f)
			}
			prev = rp
		}
	}
}

// TestMemoryBoundGainsLess pins the Fig. 12b separation: at the same
// frequency boost, mcf gains far less than x264.
func TestMemoryBoundGainsLess(t *testing.T) {
	const base, boosted = 4200.0, 4900.0
	gainX := MustByName("x264").RelPerf(boosted, base) - 1
	gainM := MustByName("mcf").RelPerf(boosted, base) - 1
	if gainM >= 0.5*gainX {
		t.Errorf("mcf gain %.3f not well below x264 gain %.3f", gainM, gainX)
	}
}

func TestLatency(t *testing.T) {
	sq := MustByName("squeezenet")
	if got := sq.LatencyMs(4200, 4200); math.Abs(got-80) > 1e-9 {
		t.Errorf("squeezenet baseline latency = %g, want 80 ms (Fig. 2)", got)
	}
	if got := sq.LatencyMs(4900, 4200); got >= 80 || got < 60 {
		t.Errorf("squeezenet latency at 4.9 GHz = %g, want in (60, 80)", got)
	}
	if got := MustByName("gcc").LatencyMs(4900, 4200); got != 0 {
		t.Errorf("gcc has no latency metric but returned %g", got)
	}
}

func TestRelPerfBounded(t *testing.T) {
	prop := func(fRaw uint16, mRaw uint8) bool {
		f := 1000 + float64(fRaw%8000)
		p := Profile{Name: "q", MemIntensity: float64(mRaw) / 255}
		rp := p.RelPerf(f, 4200)
		// Performance can never exceed the frequency ratio, and a
		// fully memory-bound profile never moves.
		if rp > f/4200+1e-9 && f > 4200 {
			return false
		}
		if p.MemIntensity == 1 && math.Abs(rp-1) > 1e-9 {
			return false
		}
		return rp > 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStressmarks(t *testing.T) {
	for _, s := range TestTimeSuite() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Profile.Name, err)
		}
	}
	vv := VoltageVirus()
	if !vv.Synchronized || vv.ThrottlePeriod != 128 || vv.ThreadsPerCore != 4 {
		t.Errorf("voltage virus recipe wrong: %+v", vv)
	}
	if vv.Profile.StressScore < WorstStress().StressScore {
		t.Error("voltage virus below the worst profiled application stress")
	}
	if PowerVirus().Profile.CdynRel < 1 {
		t.Error("power virus not the highest-power workload")
	}
}

func TestStressmarkCurrentStep(t *testing.T) {
	vv := VoltageVirus()
	step := vv.CurrentStepAmps(8, 14, 1.25)
	if step <= 0 {
		t.Fatal("synchronized virus produced no current step")
	}
	// 8 cores × 14 W × 0.9 swing / 1.25 V ≈ 80 A.
	if math.Abs(step-80.64) > 1e-9 {
		t.Errorf("current step = %g A, want 80.64", step)
	}
	if PowerVirus().CurrentStepAmps(8, 14, 1.25) != 0 {
		t.Error("unsynchronized stressmark should produce no synchronized step")
	}
	if vv.CurrentStepAmps(8, 14, 0) != 0 {
		t.Error("zero voltage should produce no step")
	}
}

func TestStressmarkValidateCatchesBadness(t *testing.T) {
	s := VoltageVirus()
	s.ThreadsPerCore = 5 // POWER7+ is 4-way SMT
	if err := s.Validate(); err == nil {
		t.Error("5 threads per core accepted")
	}
	s = VoltageVirus()
	s.ThrottlePeriod = -1
	if err := s.Validate(); err == nil {
		t.Error("negative throttle period accepted")
	}
}

func TestKernels(t *testing.T) {
	for _, k := range UBenchKernels() {
		if err := k.Check(64); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
		// Deterministic across calls.
		if k.Run(100) != k.Run(100) {
			t.Errorf("%s not deterministic", k.Name)
		}
		// Size-sensitive (different work → different checksum).
		if k.Run(100) == k.Run(101) {
			t.Errorf("%s checksum insensitive to size", k.Name)
		}
		if k.Run(0) != 0 {
			t.Errorf("%s non-zero checksum for zero size", k.Name)
		}
	}
}

func TestKernelFor(t *testing.T) {
	if _, ok := KernelFor("daxpy"); !ok {
		t.Error("no kernel for daxpy")
	}
	if _, ok := KernelFor("gcc"); ok {
		t.Error("kernel reported for profile-only workload")
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	bad := []Profile{
		{Name: ""},
		{Name: "a", CdynRel: -1},
		{Name: "a", CdynRel: 2},
		{Name: "a", MemIntensity: 1.5},
		{Name: "a", StressScore: 2},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}
