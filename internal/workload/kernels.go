package workload

import (
	"errors"
	"fmt"
)

// Kernel is an executable micro-benchmark body with a built-in result
// check, mirroring how the paper relies on uBench/SPEC result checkers
// to detect silent data corruption (Sec. III-B). The simulator decides
// *whether* a run was corrupted; the kernels provide the checked
// computation that decision is applied to, and give the examples and
// benchmark harness real work to time.
type Kernel struct {
	// Name matches the workload profile the kernel implements.
	Name string
	// Run executes size units of work and returns a checksum.
	Run func(size int) uint64
	// Expected returns the known-good checksum for a size.
	Expected func(size int) uint64
}

// ErrSDC is returned by Check when a checksum mismatches — the silent
// data corruption case of the failure taxonomy.
var ErrSDC = errors.New("workload: silent data corruption detected")

// Check runs the kernel and verifies its checksum.
func (k Kernel) Check(size int) error {
	got := k.Run(size)
	want := k.Expected(size)
	if got != want {
		return fmt.Errorf("%w: %s size %d: got %#x want %#x", ErrSDC, k.Name, size, got, want)
	}
	return nil
}

// DaxpyKernel returns the FP-unit stressor: y ← a·x + y over float64
// vectors, checksummed by bit pattern.
func DaxpyKernel() Kernel {
	run := func(size int) uint64 {
		if size <= 0 {
			return 0
		}
		x := make([]float64, size)
		y := make([]float64, size)
		for i := range x {
			x[i] = float64(i%97) * 0.5
			y[i] = float64(i%89) * 0.25
		}
		const a = 1.000244140625 // exactly representable; keeps checksums portable
		for iter := 0; iter < 4; iter++ {
			for i := range y {
				y[i] = a*x[i] + y[i]
			}
		}
		var sum uint64
		for i := range y {
			sum = sum*1099511628211 + uint64(int64(y[i]*16))
		}
		return sum
	}
	return Kernel{Name: "daxpy", Run: run, Expected: run}
}

// StreamKernel returns the load-store stressor: the STREAM triad
// a ← b + s·c over arrays sized to defeat the cache.
func StreamKernel() Kernel {
	run := func(size int) uint64 {
		if size <= 0 {
			return 0
		}
		a := make([]float64, size)
		b := make([]float64, size)
		c := make([]float64, size)
		for i := range b {
			b[i] = float64(i % 31)
			c[i] = float64(i % 17)
		}
		const s = 3.0
		for i := range a {
			a[i] = b[i] + s*c[i]
		}
		var sum uint64
		for i := range a {
			sum = sum*1099511628211 + uint64(int64(a[i]))
		}
		return sum
	}
	return Kernel{Name: "stream", Run: run, Expected: run}
}

// CoremarkKernel returns the control/branch/integer stressor: a mix of
// list-ish pointer chasing, a small state machine and CRC accumulation,
// in the spirit of EEMBC CoreMark's three workloads.
func CoremarkKernel() Kernel {
	run := func(size int) uint64 {
		if size <= 0 {
			return 0
		}
		// Pointer-chase over a pseudo-random permutation.
		n := 1024
		next := make([]int32, n)
		for i := range next {
			next[i] = int32((i*167 + 13) % n)
		}
		var crc uint64 = 0xFFFF
		state := 0
		idx := int32(0)
		for i := 0; i < size*64; i++ {
			idx = next[idx]
			// Branchy state machine.
			switch state {
			case 0:
				if idx&1 == 0 {
					state = 1
				}
			case 1:
				if idx%3 == 0 {
					state = 2
				} else {
					state = 0
				}
			default:
				state = int(idx) & 1
			}
			// CRC-ish accumulate.
			crc ^= uint64(idx) + uint64(state)<<7
			crc = (crc << 5) | (crc >> 59)
			crc *= 0x100000001B3
		}
		return crc
	}
	return Kernel{Name: "coremark", Run: run, Expected: run}
}

// UBenchKernels returns the three micro-benchmark kernels in the order
// the characterization methodology runs them.
func UBenchKernels() []Kernel {
	return []Kernel{CoremarkKernel(), DaxpyKernel(), StreamKernel()}
}

// KernelFor returns the executable kernel for a micro-benchmark profile
// name, or ok=false when the workload is profile-only.
func KernelFor(name string) (Kernel, bool) {
	for _, k := range UBenchKernels() {
		if k.Name == name {
			return k, true
		}
	}
	return Kernel{}, false
}
