// Package fault is the deterministic fault-injection layer: a seeded,
// replayable source of the disturbances a fine-tuned ATM system must
// survive on a real test floor — CPM read upsets and stuck-at sites,
// transient service-processor telemetry errors, lossy operator
// transports, and a flaky trial harness.
//
// The paper operates silicon at the edge of failure; its procedures
// only earn trust if they behave when the measurement and control plane
// itself misbehaves. Production power-management firmware is validated
// hardware-in-the-loop against exactly these injected disturbances
// (ControlPULP), and post-silicon tuning is framed as a test procedure
// robust to measurement uncertainty (EffiTest). This package brings
// that discipline to the reproduction: every fault is drawn from the
// seeded splittable generator in internal/rng — never the wall clock —
// so any failure scenario replays bit-for-bit from (profile, seed), and
// two runs with the same -fault-seed produce byte-identical reports.
//
// The injector arms hooks the platform packages expose (and knows
// nothing else about their internals):
//
//   - cpm.Monitor.SetReadFault — measurement upsets, stuck-at sites;
//   - chip.Machine.SetTrialFault — spurious harness failures
//     (chip.ErrTransient) and persistently broken cores;
//   - fsp.Controller.SetReadFault — transient telemetry-register reads;
//   - WrapConn / WrapReadWriter — dropped and garbled response lines on
//     the operator transport.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Profile describes how hostile the platform is: per-layer fault rates
// and counts. The zero value injects nothing.
type Profile struct {
	// CPMUpsetProb is the per-measurement probability that a reading's
	// inverter count is jittered by up to ±CPMUpsetMag units.
	CPMUpsetProb float64
	// CPMUpsetMag is the maximum upset magnitude in inverter units
	// (default 3 when upsets are enabled).
	CPMUpsetMag int
	// CPMStuckSites is the number of cores given one CPM site stuck
	// reading low margin. A stuck-low site drags the worst-of-five
	// reading down, slowing that core — a degradation, not a crash.
	CPMStuckSites int

	// TelemetryErrProb is the per-read probability that a read-only FSP
	// telemetry register access fails with a transient error.
	TelemetryErrProb float64

	// DropProb is the per-line probability that a faulty transport
	// drops a response line entirely.
	DropProb float64
	// GarbleProb is the per-line probability that a faulty transport
	// corrupts a response line's framing.
	GarbleProb float64

	// TrialErrProb is the per-trial probability that the harness fails
	// transiently (retryable chip.ErrTransient).
	TrialErrProb float64
	// BrokenCores is the number of cores (chosen deterministically from
	// the seed) whose trials always fail — the persistent failures that
	// must end in quarantine, not an aborted run.
	BrokenCores int
}

// Empty reports whether the profile injects nothing.
func (p Profile) Empty() bool { return p == Profile{} }

// withDefaults fills dependent defaults.
func (p Profile) withDefaults() Profile {
	if p.CPMUpsetProb > 0 && p.CPMUpsetMag == 0 {
		p.CPMUpsetMag = 3
	}
	return p
}

// Validate rejects probabilities outside [0,1] and negative counts.
func (p Profile) Validate() error {
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"cpm-upset", p.CPMUpsetProb},
		{"telemetry", p.TelemetryErrProb},
		{"drop", p.DropProb},
		{"garble", p.GarbleProb},
		{"trial-err", p.TrialErrProb},
	} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("fault: %s probability %v outside [0,1]", pr.name, pr.v)
		}
	}
	if p.DropProb+p.GarbleProb > 1 {
		return fmt.Errorf("fault: drop+garble probability %v exceeds 1", p.DropProb+p.GarbleProb)
	}
	if p.CPMUpsetMag < 0 || p.CPMStuckSites < 0 || p.BrokenCores < 0 {
		return fmt.Errorf("fault: negative count in profile %+v", p)
	}
	return nil
}

// presets are the named scenarios -fault-profile accepts directly.
var presets = map[string]Profile{
	"none": {},
	// test-floor: the baseline hostile environment — a little of
	// everything, nothing persistent.
	"test-floor": {
		CPMUpsetProb:     0.01,
		TelemetryErrProb: 0.05,
		DropProb:         0.05,
		GarbleProb:       0.05,
		TrialErrProb:     0.02,
	},
	// flaky-fsp: the service-processor link is the problem.
	"flaky-fsp": {
		TelemetryErrProb: 0.20,
		DropProb:         0.15,
		GarbleProb:       0.10,
	},
	// noisy-cpm: sensors misbehave; one core has a stuck site.
	"noisy-cpm": {
		CPMUpsetProb:  0.05,
		CPMStuckSites: 1,
	},
	// broken-core: one core's trials never complete — the quarantine
	// path — plus a background of transient harness noise.
	"broken-core": {
		BrokenCores:  1,
		TrialErrProb: 0.01,
	},
}

// PresetNames lists the named profiles in sorted order.
func PresetNames() []string {
	var names []string
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseProfile builds a Profile from a spec string: a preset name
// ("test-floor"), a comma-separated key=value list
// ("trial-err=0.1,broken=1"), or a preset with overrides
// ("test-floor,drop=0.3"). The empty string and "none" are the empty
// profile.
func ParseProfile(spec string) (Profile, error) {
	var p Profile
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	for i, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.Contains(part, "=") {
			base, ok := presets[part]
			if !ok {
				return Profile{}, fmt.Errorf("fault: unknown profile %q (have %s)",
					part, strings.Join(PresetNames(), ", "))
			}
			if i != 0 {
				return Profile{}, fmt.Errorf("fault: preset %q must come first in %q", part, spec)
			}
			p = base
			continue
		}
		k, v, _ := strings.Cut(part, "=")
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if err := p.set(k, v); err != nil {
			return Profile{}, err
		}
	}
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// set applies one key=value override.
func (p *Profile) set(k, v string) error {
	parseProb := func() (float64, error) {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("fault: bad value %q for %s", v, k)
		}
		return f, nil
	}
	parseCount := func() (int, error) {
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("fault: bad count %q for %s", v, k)
		}
		return n, nil
	}
	var err error
	switch k {
	case "cpm-upset":
		p.CPMUpsetProb, err = parseProb()
	case "cpm-upset-mag":
		p.CPMUpsetMag, err = parseCount()
	case "stuck":
		p.CPMStuckSites, err = parseCount()
	case "telemetry":
		p.TelemetryErrProb, err = parseProb()
	case "drop":
		p.DropProb, err = parseProb()
	case "garble":
		p.GarbleProb, err = parseProb()
	case "trial-err":
		p.TrialErrProb, err = parseProb()
	case "broken":
		p.BrokenCores, err = parseCount()
	default:
		return fmt.Errorf("fault: unknown key %q (want cpm-upset, cpm-upset-mag, stuck, telemetry, drop, garble, trial-err, broken)", k)
	}
	return err
}

// String renders the profile as a canonical key=value spec ParseProfile
// accepts; the empty profile renders as "none".
func (p Profile) String() string {
	var parts []string
	add := func(k string, v float64) {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%v", k, v))
		}
	}
	addN := func(k string, n int) {
		if n != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, n))
		}
	}
	add("cpm-upset", p.CPMUpsetProb)
	addN("cpm-upset-mag", p.CPMUpsetMag)
	addN("stuck", p.CPMStuckSites)
	add("telemetry", p.TelemetryErrProb)
	add("drop", p.DropProb)
	add("garble", p.GarbleProb)
	add("trial-err", p.TrialErrProb)
	addN("broken", p.BrokenCores)
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}
