package fault

import (
	"testing"

	"repro/internal/chip"
	"repro/internal/fsp"
)

// TestClientMarginsUnderGarbledTransport: the margins verb — the
// sentinel's telemetry path — must survive a faulty link like every
// other command. Dropped and garbled response lines are absorbed by
// the client's retry/re-sync envelope and the values delivered are
// identical to a clean link's.
func TestClientMarginsUnderGarbledTransport(t *testing.T) {
	clean := fsp.NewClient(fsp.NewLoopback(fsp.NewSession(fsp.NewController(chip.NewReference()))), fsp.ClientOptions{})
	want, err := clean.Margins()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("clean margins read returned no cores")
	}

	read := func(seed uint64) ([][]fsp.CoreMargin, fsp.ClientStats) {
		ctl := fsp.NewController(chip.NewReference())
		inj := New(Profile{DropProb: 0.15, GarbleProb: 0.25}, seed)
		rw := inj.WrapReadWriter(fsp.NewLoopback(fsp.NewSession(ctl)))
		cli := fsp.NewClient(rw, fsp.ClientOptions{Retries: 8})
		var out [][]fsp.CoreMargin
		for i := 0; i < 10; i++ {
			ms, err := cli.Margins()
			if err != nil {
				t.Fatalf("margins read %d under faults: %v", i, err)
			}
			out = append(out, ms)
		}
		return out, cli.Stats()
	}

	got, st := read(7)
	if st.Retries == 0 && st.Resyncs == 0 {
		t.Fatalf("fault profile injected nothing (stats %+v) — the test is vacuous", st)
	}
	for i, ms := range got {
		if len(ms) != len(want) {
			t.Fatalf("read %d returned %d cores, want %d", i, len(ms), len(want))
		}
		for k := range ms {
			if ms[k] != want[k] {
				t.Fatalf("read %d core %d = %+v, want %+v (faults leaked into values)", i, k, ms[k], want[k])
			}
		}
	}

	// Identical seeds replay the identical fault schedule.
	got2, st2 := read(7)
	if st != st2 {
		t.Fatalf("same seed, different stats: %+v vs %+v", st, st2)
	}
	for i := range got {
		for k := range got[i] {
			if got[i][k] != got2[i][k] {
				t.Fatalf("same seed, different values at read %d core %d", i, k)
			}
		}
	}
}
