package fault

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/chip"
	"repro/internal/fsp"
)

// TestWrapReadWriterDeterministic: the same (profile, seed) applied to
// the same byte stream survives, drops and garbles the same lines.
func TestWrapReadWriterDeterministic(t *testing.T) {
	input := ""
	for i := 0; i < 200; i++ {
		input += "ok line\n"
	}
	read := func() string {
		in := New(Profile{DropProb: 0.2, GarbleProb: 0.2}, 5)
		rw := in.WrapReadWriter(struct {
			io.Reader
			io.Writer
		}{strings.NewReader(input), io.Discard})
		out, err := io.ReadAll(rw)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	a, b := read(), read()
	if a != b {
		t.Error("identically-seeded wrapped streams differ")
	}
	if a == input {
		t.Error("profile with drop+garble 0.4 left 200 lines untouched")
	}
	drops := 200 - strings.Count(a, "\n")
	garbles := strings.Count(a, "##")
	if drops == 0 || garbles == 0 {
		t.Errorf("want both drops and garbles; got %d drops, %d garbles", drops, garbles)
	}
}

func TestWrapNoFaultsIsIdentity(t *testing.T) {
	in := New(Profile{}, 5)
	var buf bytes.Buffer
	rw := struct {
		io.Reader
		io.Writer
	}{strings.NewReader("x\n"), &buf}
	if got := in.WrapReadWriter(rw); got != io.ReadWriter(rw) {
		t.Error("empty profile did not return the transport unchanged")
	}
}

// startFaultyServer runs an FSP session over one end of a pipe and
// returns the client's (possibly fault-wrapped) end.
func startFaultyServer(t *testing.T, inj *Injector) net.Conn {
	t.Helper()
	cliSide, srvSide := net.Pipe()
	sess := fsp.NewSession(fsp.NewController(chip.NewReference()))
	go func() {
		//lint:ignore errdrop test server: the client closing the pipe ends the session with an expected error
		sess.Serve(srvSide, srvSide)
		//lint:ignore errdrop test teardown of an in-memory pipe
		srvSide.Close()
	}()
	t.Cleanup(func() {
		//lint:ignore errdrop test teardown of an in-memory pipe
		cliSide.Close()
	})
	if inj == nil {
		return cliSide
	}
	return inj.WrapConn(cliSide)
}

// TestClientSurvivesFaultyTransport is the operator-plane resilience
// proof: a client with retries and re-sync completes a command sequence
// over a transport that drops and garbles lines.
func TestClientSurvivesFaultyTransport(t *testing.T) {
	p, err := ParseProfile("drop=0.15,garble=0.1")
	if err != nil {
		t.Fatal(err)
	}
	conn := startFaultyServer(t, New(p, 3))
	cli := fsp.NewClient(conn, fsp.ClientOptions{
		Retries: 8,
		Timeout: 50 * time.Millisecond,
	})
	for i := 0; i < 20; i++ {
		if err := cli.Ping(); err != nil {
			t.Fatalf("ping %d failed through the fault envelope: %v", i, err)
		}
	}
	red, err := cli.CPM("P0C0")
	if err != nil {
		t.Fatalf("cpm read: %v", err)
	}
	if red != 0 {
		t.Errorf("fresh machine reports reduction %d, want 0", red)
	}
	if err := cli.SetCPM("P0C0", 3); err != nil {
		t.Fatalf("cpm write: %v", err)
	}
	red, err = cli.CPM("P0C0")
	if err != nil {
		t.Fatal(err)
	}
	if red != 3 {
		t.Errorf("read back reduction %d, want 3", red)
	}
	st := cli.Stats()
	if st.Retries == 0 && st.Resyncs == 0 {
		t.Error("a 25% fault rate cost zero retries and resyncs — faults not exercised")
	}
	t.Logf("stats: %+v", st)
}

// TestClientCleanTransportNoRetries: over a clean link the resilience
// machinery must be pure overhead-free passthrough.
func TestClientCleanTransportNoRetries(t *testing.T) {
	conn := startFaultyServer(t, nil)
	cli := fsp.NewClient(conn, fsp.ClientOptions{Timeout: time.Second})
	if err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
	cores, err := cli.Cores()
	if err != nil {
		t.Fatal(err)
	}
	if len(cores) == 0 {
		t.Error("no cores listed")
	}
	if st := cli.Stats(); st.Retries != 0 || st.Resyncs != 0 || st.Discarded != 0 {
		t.Errorf("clean link accumulated fault stats: %+v", st)
	}
}

// TestClientExhaustsBudget: a transport that garbles everything must
// surface fsp.ErrExhausted, not hang or panic.
func TestClientExhaustsBudget(t *testing.T) {
	p := Profile{GarbleProb: 1}
	conn := startFaultyServer(t, New(p, 3))
	cli := fsp.NewClient(conn, fsp.ClientOptions{
		Retries: 2,
		Timeout: 50 * time.Millisecond,
	})
	_, err := cli.Exec("cores")
	if err == nil {
		t.Fatal("command succeeded over a fully-garbled link")
	}
	if !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Errorf("error %v does not report exhaustion", err)
	}
}

// TestTelemetryFaultRetried: injected transient telemetry errors are
// reported in-band, marked transient, and absorbed by the client's
// retry loop.
func TestTelemetryFaultRetried(t *testing.T) {
	cliSide, srvSide := net.Pipe()
	ctl := fsp.NewController(chip.NewReference())
	inj := New(Profile{TelemetryErrProb: 0.4}, 9)
	inj.ArmController(ctl)
	sess := fsp.NewSession(ctl)
	go func() {
		//lint:ignore errdrop test server: the client closing the pipe ends the session with an expected error
		sess.Serve(srvSide, srvSide)
	}()
	t.Cleanup(func() {
		//lint:ignore errdrop test teardown of an in-memory pipe
		cliSide.Close()
	})
	cli := fsp.NewClient(cliSide, fsp.ClientOptions{
		Retries: 12,
		Timeout: time.Second,
	})
	sawRetry := false
	for i := 0; i < 10; i++ {
		if _, err := cli.FreqMHz("P0C0"); err != nil {
			t.Fatalf("freq read %d not absorbed: %v", i, err)
		}
		if cli.Stats().Retries > 0 {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Error("40% telemetry fault rate never triggered a retry")
	}
}

// TestFaultyLinkEndToEndScript drives the raw line protocol (no client)
// through a reader that tolerates fault markers, proving the session
// itself never breaks formation under transport garbage.
func TestFaultyLinkEndToEndScript(t *testing.T) {
	conn := startFaultyServer(t, nil)
	if _, err := io.WriteString(conn, "cores\nquit\n"); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(conn)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "ok ") || lines[1] != "ok bye" {
		t.Errorf("script got %q", lines)
	}
}
