package fault

import (
	"bufio"
	"io"
	"net"

	"repro/internal/rng"
)

// Transport faulting models a lossy operator link at line granularity:
// response lines read through a wrapped transport are deterministically
// dropped (the reader never sees them — to a client with a deadline
// this is indistinguishable from a hung link) or garbled (the framing
// bytes are corrupted, so the line parses as neither "ok" nor "err").
// Writes pass through untouched: faulting the command direction would
// only exercise the server's unknown-command path, which the garble
// fault already covers from the client's point of view.

// lineFaults applies per-line drop/garble decisions to a read stream.
type lineFaults struct {
	br      *bufio.Reader
	src     *rng.Source
	drop    float64
	garble  float64
	pending []byte
	hits    *hits // the owning injector's counters, resolved at fire time
}

func newLineFaults(r io.Reader, src *rng.Source, drop, garble float64, h *hits) *lineFaults {
	return &lineFaults{br: bufio.NewReaderSize(r, 4096), src: src, drop: drop, garble: garble, hits: h}
}

// Read delivers bytes of the next surviving (possibly garbled) line.
func (lf *lineFaults) Read(p []byte) (int, error) {
	for len(lf.pending) == 0 {
		line, err := lf.br.ReadString('\n')
		if err != nil {
			if len(line) > 0 {
				// Partial line interrupted by an error (deadline, EOF):
				// deliver the bytes untouched rather than losing them —
				// no fault decision is made on incomplete frames.
				lf.pending = []byte(line)
				break
			}
			return 0, err
		}
		switch u := lf.src.Float64(); {
		case u < lf.drop:
			lf.hits.linesDropped.Inc()
			continue // line lost on the wire
		case u < lf.drop+lf.garble:
			lf.hits.linesGarbled.Inc()
			lf.pending = garbleLine(line)
		default:
			lf.pending = []byte(line)
		}
	}
	n := copy(p, lf.pending)
	lf.pending = lf.pending[n:]
	return n, nil
}

// garbleLine corrupts a line's framing: the leading bytes are
// overwritten so the line can no longer start with "ok" or "err",
// forcing the reader's garble detection rather than a silent wrong
// value.
func garbleLine(line string) []byte {
	b := []byte(line)
	for i := 0; i < len(b) && i < 2 && b[i] != '\n'; i++ {
		b[i] = '#'
	}
	return b
}

// Conn wraps a net.Conn so lines read from it suffer the injector's
// drop/garble faults. Deadlines, writes and Close pass through to the
// wrapped connection, so client timeouts keep working — a dropped line
// surfaces as a read deadline timeout, exactly like a hung link.
type Conn struct {
	net.Conn
	lf *lineFaults
}

func (c *Conn) Read(p []byte) (int, error) { return c.lf.Read(p) }

// WrapConn wraps a network transport with this injector's drop/garble
// profile. Each wrapped connection draws from its own stream, so
// concurrent connections fault independently and deterministically.
func (in *Injector) WrapConn(c net.Conn) net.Conn {
	if in.profile.DropProb == 0 && in.profile.GarbleProb == 0 {
		return c
	}
	in.conns++
	src := in.root.SplitIndex("conn", in.conns)
	return &Conn{Conn: c, lf: newLineFaults(c, src, in.profile.DropProb, in.profile.GarbleProb, &in.hits)}
}

// readWriter is WrapReadWriter's deadline-less transport.
type readWriter struct {
	lf *lineFaults
	w  io.Writer
}

func (rw *readWriter) Read(p []byte) (int, error)  { return rw.lf.Read(p) }
func (rw *readWriter) Write(p []byte) (int, error) { return rw.w.Write(p) }

// WrapReadWriter is WrapConn for plain stream transports (pipes,
// buffers). Without deadlines a dropped line blocks the reader until
// more data arrives, so prefer WrapConn when timeout behaviour matters.
func (in *Injector) WrapReadWriter(rw io.ReadWriter) io.ReadWriter {
	if in.profile.DropProb == 0 && in.profile.GarbleProb == 0 {
		return rw
	}
	in.conns++
	src := in.root.SplitIndex("conn", in.conns)
	return &readWriter{lf: newLineFaults(rw, src, in.profile.DropProb, in.profile.GarbleProb, &in.hits), w: rw}
}
