package fault

import (
	"fmt"
	"sort"

	"repro/internal/chip"
	"repro/internal/cpm"
	"repro/internal/fsp"
	"repro/internal/obs"
	"repro/internal/rng"
)

// hits is the injector's per-site fire counters. The zero value (all
// nil handles) is the disabled plane; Observe resolves the handles.
// Hooks read the fields at fire time through the injector pointer, so
// Observe works whether it is called before or after arming.
type hits struct {
	cpmUpsets     *obs.Counter
	cpmStuck      *obs.Counter
	telemetryErrs *obs.Counter
	linesDropped  *obs.Counter
	linesGarbled  *obs.Counter
	trialSpurious *obs.Counter
	trialBroken   *obs.Counter
}

// Injector arms a Profile on a platform. All randomness descends from
// one seeded root via labelled splits, so every armed layer draws an
// independent deterministic stream: the same (profile, seed) replays
// the same upsets, drops and broken cores regardless of which other
// layers are armed.
//
// An injector's streams are not concurrency-safe; each armed hook is
// expected to be driven from one goroutine at a time (the simulation is
// single-threaded and the FSP server serializes commands, so this holds
// everywhere the hooks fire). Each wrapped transport gets its own
// stream, so concurrent connections stay independent.
type Injector struct {
	profile Profile
	seed    uint64
	root    *rng.Source

	broken  []string // labels of persistently failing cores, sorted
	stuck   map[string]int
	conns   int
	machine *chip.Machine
	ctl     *fsp.Controller
	hits    hits
}

// Observe resolves per-site fire counters against r, so every injected
// fault — CPM upsets and stuck reads, telemetry errors, dropped and
// garbled lines, spurious and broken-core trial faults — is counted as
// it lands. Call it before driving traffic through armed hooks (order
// relative to the Arm* calls does not matter). A nil registry disables
// counting again.
func (in *Injector) Observe(r *obs.Registry) {
	if r == nil {
		in.hits = hits{}
		return
	}
	in.hits = hits{
		cpmUpsets:     r.Counter("fault_cpm_upsets_total"),
		cpmStuck:      r.Counter("fault_cpm_stuck_reads_total"),
		telemetryErrs: r.Counter("fault_telemetry_errors_total"),
		linesDropped:  r.Counter("fault_lines_dropped_total"),
		linesGarbled:  r.Counter("fault_lines_garbled_total"),
		trialSpurious: r.Counter("fault_trial_spurious_total"),
		trialBroken:   r.Counter("fault_trial_broken_total"),
	}
}

// New builds an injector from a validated profile and a seed.
func New(p Profile, seed uint64) *Injector {
	p = p.withDefaults()
	return &Injector{
		profile: p,
		seed:    seed,
		root:    rng.New(seed),
		stuck:   map[string]int{},
	}
}

// Profile returns the armed profile.
func (in *Injector) Profile() Profile { return in.profile }

// Seed returns the seed every armed fault stream descends from.
func (in *Injector) Seed() uint64 { return in.seed }

// Broken returns the labels of cores the injector fails persistently,
// in sorted order. Empty until ArmMachine runs.
func (in *Injector) Broken() []string {
	return append([]string(nil), in.broken...)
}

// StuckSites returns the chosen (core label → stuck site index) pairs.
// Empty until ArmMachine runs.
func (in *Injector) StuckSites() map[string]int {
	out := map[string]int{}
	for k, v := range in.stuck {
		out[k] = v
	}
	return out
}

// ArmMachine installs the CPM and trial hooks on every core of m.
// Broken cores and stuck sites are chosen here, deterministically from
// the seed and the machine's sorted core labels.
func (in *Injector) ArmMachine(m *chip.Machine) {
	in.machine = m
	labels := make([]string, 0, len(m.AllCores()))
	for _, core := range m.AllCores() {
		labels = append(labels, core.Profile.Label)
	}
	sort.Strings(labels)

	// Choose the persistently broken cores.
	in.broken = in.broken[:0]
	if n := in.profile.BrokenCores; n > 0 {
		perm := in.root.Split("broken").Perm(len(labels))
		if n > len(labels) {
			n = len(labels)
		}
		for _, idx := range perm[:n] {
			in.broken = append(in.broken, labels[idx])
		}
		sort.Strings(in.broken)
	}
	brokenSet := map[string]bool{}
	for _, l := range in.broken {
		brokenSet[l] = true
	}

	// Choose the cores with a stuck CPM site; the site index itself is
	// drawn per core, in AllCores order, when the hook is armed.
	in.stuck = map[string]int{}
	stuckCore := map[string]bool{}
	ssrc := in.root.Split("stuck")
	if n := in.profile.CPMStuckSites; n > 0 {
		perm := ssrc.Perm(len(labels))
		if n > len(labels) {
			n = len(labels)
		}
		for _, idx := range perm[:n] {
			stuckCore[labels[idx]] = true
		}
	}

	// Arm the per-core CPM hooks.
	for _, core := range m.AllCores() {
		label := core.Profile.Label
		upset := in.profile.CPMUpsetProb
		mag := in.profile.CPMUpsetMag
		hasStuck := stuckCore[label]
		stuckSite := 0
		if hasStuck {
			stuckSite = ssrc.Intn(len(core.Profile.SiteSkewPs))
			in.stuck[label] = stuckSite
		}
		if upset == 0 && !hasStuck {
			core.Monitor.SetReadFault(nil)
			continue
		}
		src := in.root.Split("cpm/" + label)
		core.Monitor.SetReadFault(func(r cpm.Reading) cpm.Reading {
			if hasStuck && r.Units > stuckUnits {
				// The stuck site reports almost no margin every cycle;
				// worst-of-five makes it the reading.
				r.Units = stuckUnits
				r.WorstSite = stuckSite
				in.hits.cpmStuck.Inc()
			}
			if upset > 0 && src.Float64() < upset {
				delta := src.Intn(2*mag+1) - mag
				r.Units += delta
				in.hits.cpmUpsets.Inc()
			}
			return r
		})
	}

	// Arm the trial hook.
	if in.profile.TrialErrProb == 0 && len(in.broken) == 0 {
		m.SetTrialFault(nil)
		return
	}
	tsrc := in.root.Split("trial")
	terr := in.profile.TrialErrProb
	m.SetTrialFault(func(label, workload string, res chip.TrialResult) (chip.TrialResult, error) {
		if brokenSet[label] {
			in.hits.trialBroken.Inc()
			return res, fmt.Errorf("fault: core %s harness broken (%s): %w",
				label, workload, chip.ErrTransient)
		}
		if terr > 0 && tsrc.Float64() < terr {
			in.hits.trialSpurious.Inc()
			return res, fmt.Errorf("fault: spurious harness failure on %s (%s): %w",
				label, workload, chip.ErrTransient)
		}
		return res, nil
	})
}

// stuckUnits is the margin a stuck-low CPM site reports: one inverter
// of slack, every cycle, regardless of the real path delay.
const stuckUnits = 1

// ArmController installs the telemetry read-fault hook on a service
// processor. Injected errors carry the in-band "transient" convention,
// so operator clients (fsp.Client) retry them.
func (in *Injector) ArmController(ctl *fsp.Controller) {
	in.ctl = ctl
	if in.profile.TelemetryErrProb == 0 {
		ctl.SetReadFault(nil)
		return
	}
	src := in.root.Split("fsp")
	p := in.profile.TelemetryErrProb
	ctl.SetReadFault(func(a fsp.Addr) error {
		if src.Float64() < p {
			in.hits.telemetryErrs.Inc()
			return fmt.Errorf("transient telemetry upset at %#x: %w", uint32(a), chip.ErrTransient)
		}
		return nil
	})
}

// Disarm removes every hook the injector installed, leaving the
// platform fault-free.
func (in *Injector) Disarm() {
	if in.machine != nil {
		in.machine.SetTrialFault(nil)
		for _, core := range in.machine.AllCores() {
			core.Monitor.SetReadFault(nil)
		}
		in.machine = nil
	}
	if in.ctl != nil {
		in.ctl.SetReadFault(nil)
		in.ctl = nil
	}
}
