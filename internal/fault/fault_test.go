package fault

import (
	"strings"
	"testing"
)

func TestParsePresets(t *testing.T) {
	for _, name := range PresetNames() {
		p, err := ParseProfile(name)
		if err != nil {
			t.Fatalf("ParseProfile(%q): %v", name, err)
		}
		if name == "none" && !p.Empty() {
			t.Errorf("none parsed non-empty: %+v", p)
		}
		if name != "none" && p.Empty() {
			t.Errorf("%s parsed empty", name)
		}
	}
	if _, err := ParseProfile("no-such-profile"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestParseKeyValues(t *testing.T) {
	p, err := ParseProfile("trial-err=0.1,broken=2,drop=0.05")
	if err != nil {
		t.Fatal(err)
	}
	if p.TrialErrProb != 0.1 || p.BrokenCores != 2 || p.DropProb != 0.05 {
		t.Errorf("parsed %+v", p)
	}
}

func TestParsePresetWithOverride(t *testing.T) {
	base, err := ParseProfile("test-floor")
	if err != nil {
		t.Fatal(err)
	}
	p, err := ParseProfile("test-floor,drop=0.3")
	if err != nil {
		t.Fatal(err)
	}
	if p.DropProb != 0.3 {
		t.Errorf("override ignored: %+v", p)
	}
	if p.TelemetryErrProb != base.TelemetryErrProb {
		t.Errorf("preset fields lost: %+v", p)
	}
	// A preset anywhere but first is ambiguous and must be rejected.
	if _, err := ParseProfile("drop=0.3,test-floor"); err == nil {
		t.Error("late preset accepted")
	}
}

func TestParseRejectsBadValues(t *testing.T) {
	for _, spec := range []string{
		"drop=1.5",            // probability above 1
		"trial-err=-0.1",      // negative probability
		"drop=0.6,garble=0.6", // drop+garble over 1
		"broken=-1",           // negative count
		"bogus=1",             // unknown key
		"drop=abc",            // unparsable value
	} {
		if _, err := ParseProfile(spec); err == nil {
			t.Errorf("ParseProfile(%q) accepted", spec)
		}
	}
}

func TestUpsetMagDefault(t *testing.T) {
	p, err := ParseProfile("cpm-upset=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if p.CPMUpsetMag != 3 {
		t.Errorf("default upset magnitude %d, want 3", p.CPMUpsetMag)
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, name := range PresetNames() {
		p, err := ParseProfile(name)
		if err != nil {
			t.Fatal(err)
		}
		spec := p.String()
		back, err := ParseProfile(spec)
		if err != nil {
			t.Fatalf("%s: re-parse %q: %v", name, spec, err)
		}
		if back != p {
			t.Errorf("%s: %q round-tripped to %+v, want %+v", name, spec, back, p)
		}
	}
	if s := (Profile{}).String(); s != "none" {
		t.Errorf("empty profile renders %q", s)
	}
	if s := (Profile{DropProb: 0.5}).String(); !strings.Contains(s, "drop=0.5") {
		t.Errorf("drop profile renders %q", s)
	}
}
