package fault

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/charact"
	"repro/internal/chip"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// quickCharact keeps the methodology fast enough for the fault matrix.
func quickCharact() charact.Options {
	return charact.Options{
		Trials:        2,
		RunsPerConfig: 2,
		Apps:          workload.Realistic()[:2],
	}
}

func quickDeploy() tuning.Options {
	return tuning.Options{Passes: 1, RunsPerConfig: 2}
}

func TestInjectorChoicesDeterministic(t *testing.T) {
	p, err := ParseProfile("broken=2,stuck=2")
	if err != nil {
		t.Fatal(err)
	}
	a, b := New(p, 42), New(p, 42)
	a.ArmMachine(chip.NewReference())
	b.ArmMachine(chip.NewReference())
	if !reflect.DeepEqual(a.Broken(), b.Broken()) {
		t.Errorf("broken cores differ: %v vs %v", a.Broken(), b.Broken())
	}
	if !reflect.DeepEqual(a.StuckSites(), b.StuckSites()) {
		t.Errorf("stuck sites differ: %v vs %v", a.StuckSites(), b.StuckSites())
	}
	if len(a.Broken()) != 2 || len(a.StuckSites()) != 2 {
		t.Errorf("chose %v broken, %v stuck; want 2 each", a.Broken(), a.StuckSites())
	}
	// A different seed picks different victims (with overwhelming
	// probability on a 16-core machine; seed pair chosen to differ).
	c := New(p, 43)
	c.ArmMachine(chip.NewReference())
	if reflect.DeepEqual(a.Broken(), c.Broken()) && reflect.DeepEqual(a.StuckSites(), c.StuckSites()) {
		t.Error("seeds 42 and 43 chose identical victims")
	}
}

// TestCharacterizeQuarantinesBrokenCores is the graceful-degradation
// contract: with persistently broken cores armed, Characterize completes,
// quarantines exactly the injector's victims, and stays valid.
func TestCharacterizeQuarantinesBrokenCores(t *testing.T) {
	p, err := ParseProfile("broken=2")
	if err != nil {
		t.Fatal(err)
	}
	m := chip.NewReference()
	inj := New(p, 7)
	inj.ArmMachine(m)
	rep, err := charact.Characterize(m, quickCharact())
	if err != nil {
		t.Fatalf("Characterize with broken cores aborted: %v", err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invalid: %v", err)
	}
	var got []string
	for _, c := range rep.Cores {
		if c.Quarantined {
			got = append(got, c.Core)
			if c.QuarantineReason == "" {
				t.Errorf("%s quarantined without a reason", c.Core)
			}
			if c.Idle.Hist == nil || c.UBenchRollback == nil || c.AppLimit == nil {
				t.Errorf("%s: quarantined result has nil containers", c.Core)
			}
		}
	}
	if want := inj.Broken(); !reflect.DeepEqual(got, want) {
		t.Errorf("quarantined %v, want the injector's broken set %v", got, want)
	}
	for _, row := range rep.TableI() {
		want := false
		for _, b := range inj.Broken() {
			if row.Core == b {
				want = true
			}
		}
		if row.Quarantined != want {
			t.Errorf("TableI row %s quarantined=%v, want %v", row.Core, row.Quarantined, want)
		}
	}
}

// TestDeployQuarantinesBrokenCores: the test-time flow must complete with
// broken cores parked at reduction 0 in static mode.
func TestDeployQuarantinesBrokenCores(t *testing.T) {
	p, err := ParseProfile("broken=1")
	if err != nil {
		t.Fatal(err)
	}
	m := chip.NewReference()
	inj := New(p, 7)
	inj.ArmMachine(m)
	dep, err := tuning.Deploy(m, quickDeploy())
	if err != nil {
		t.Fatalf("Deploy with a broken core aborted: %v", err)
	}
	if got, want := dep.Quarantined(), inj.Broken(); !reflect.DeepEqual(got, want) {
		t.Fatalf("quarantined %v, want %v", got, want)
	}
	for _, label := range dep.Quarantined() {
		cfg, ok := dep.Config(label)
		if !ok {
			t.Fatalf("no config for quarantined %s", label)
		}
		if cfg.Reduction != 0 || !cfg.Quarantined || cfg.QuarantineReason == "" {
			t.Errorf("%s: config %+v, want reduction 0 and a quarantine reason", label, cfg)
		}
		core, err := m.Core(label)
		if err != nil {
			t.Fatal(err)
		}
		if core.Mode() != chip.ModeStatic {
			t.Errorf("%s deployed in mode %v, want static fallback", label, core.Mode())
		}
	}
	// Healthy cores still got a real ATM deployment.
	healthy := 0
	for _, cfg := range dep.Configs {
		if !cfg.Quarantined && cfg.StressLimit > 0 {
			healthy++
		}
	}
	if healthy == 0 {
		t.Error("no healthy core got a non-zero stress limit")
	}
}

// TestSpuriousFailuresRetried: with a low transient failure rate and the
// default retry budget, characterization completes with no quarantine and
// its limits still validate.
func TestSpuriousFailuresRetried(t *testing.T) {
	p, err := ParseProfile("trial-err=0.01")
	if err != nil {
		t.Fatal(err)
	}
	m := chip.NewReference()
	New(p, 11).ArmMachine(m)
	rep, err := charact.Characterize(m, quickCharact())
	if err != nil {
		t.Fatalf("Characterize under transient noise aborted: %v", err)
	}
	for _, c := range rep.Cores {
		if c.Quarantined {
			t.Errorf("%s quarantined under retryable noise: %s", c.Core, c.QuarantineReason)
		}
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invalid: %v", err)
	}
}

// TestNoFaultArmIsTransparent: arming and disarming leaves the machine's
// outputs identical to a never-armed machine, and an empty profile arms
// nothing in the first place.
func TestNoFaultArmIsTransparent(t *testing.T) {
	base, err := charact.Characterize(chip.NewReference(), quickCharact())
	if err != nil {
		t.Fatal(err)
	}
	m := chip.NewReference()
	inj := New(Profile{}, 7)
	inj.ArmMachine(m)
	rep, err := charact.Characterize(m, quickCharact())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.TableI(), base.TableI()) {
		t.Error("empty-profile arm changed Table I")
	}
	m2 := chip.NewReference()
	inj2 := New(Profile{TrialErrProb: 0.5}, 7)
	inj2.ArmMachine(m2)
	inj2.Disarm()
	rep2, err := charact.Characterize(m2, quickCharact())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep2.TableI(), base.TableI()) {
		t.Error("disarmed machine differs from never-armed machine")
	}
}

// renderCharact flattens a report into a canonical string for the
// byte-identity checks below.
func renderCharact(rep *charact.Report) string {
	out := ""
	for _, row := range rep.TableI() {
		out += fmt.Sprintf("%s %d %d %d %d %v\n",
			row.Core, row.Idle, row.UBench, row.Normal, row.Worst, row.Quarantined)
	}
	return out
}

func renderDeploy(dep *tuning.Deployment) string {
	out := ""
	for _, cfg := range dep.Configs {
		out += fmt.Sprintf("%s %d %d %.3f %.3f %v\n",
			cfg.Core, cfg.StressLimit, cfg.Reduction,
			float64(cfg.IdleFreq), float64(cfg.LoadedFreq), cfg.Quarantined)
	}
	return out
}

// TestFaultedRunsDeterministic is the headline replay guarantee: two
// independent runs with the same profile and fault seed produce
// byte-identical characterization and deployment reports.
func TestFaultedRunsDeterministic(t *testing.T) {
	p, err := ParseProfile("test-floor,broken=1")
	if err != nil {
		t.Fatal(err)
	}
	run := func() (string, string) {
		m := chip.NewReference()
		New(p, 7).ArmMachine(m)
		rep, err := charact.Characterize(m, quickCharact())
		if err != nil {
			t.Fatalf("Characterize: %v", err)
		}
		m2 := chip.NewReference()
		New(p, 7).ArmMachine(m2)
		dep, err := tuning.Deploy(m2, quickDeploy())
		if err != nil {
			t.Fatalf("Deploy: %v", err)
		}
		return renderCharact(rep), renderDeploy(dep)
	}
	c1, d1 := run()
	c2, d2 := run()
	if c1 != c2 {
		t.Errorf("characterization reports differ across identically-seeded runs:\n--- run 1\n%s--- run 2\n%s", c1, c2)
	}
	if d1 != d2 {
		t.Errorf("deployment reports differ across identically-seeded runs:\n--- run 1\n%s--- run 2\n%s", d1, d2)
	}
}
