package guard

import (
	"testing"

	"repro/internal/obs"
)

func TestBucketBurstAndRefill(t *testing.T) {
	reg := obs.NewRegistry()
	b := NewBucket(BucketOptions{Name: "t", Capacity: 3, RefillEvery: 4, Obs: reg})

	// The bucket starts full: the burst is admitted even though each
	// Allow only advances the event clock one tick.
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("burst request %d shed", i)
		}
	}
	// Dry: with RefillEvery=4, only every 4th attempt earns a token.
	admitted, shed := 0, 0
	for i := 0; i < 40; i++ {
		if b.Allow() {
			admitted++
		} else {
			shed++
		}
	}
	if admitted != 10 {
		t.Fatalf("sustained admissions = %d over 40 attempts, want 10 (rate 1/4)", admitted)
	}
	if got := b.Sheds(); got != int64(shed) {
		t.Fatalf("Sheds() = %d, want %d", got, shed)
	}
}

func TestBucketExternalClock(t *testing.T) {
	var clock int64
	b := NewBucket(BucketOptions{Capacity: 2, RefillEvery: 10, Now: func() int64 { return clock }})
	if !b.Allow() || !b.Allow() {
		t.Fatal("initial burst shed")
	}
	if b.Allow() {
		t.Fatal("dry bucket admitted with no elapsed time")
	}
	clock = 15 // 1 refill period + remainder 5
	if !b.Allow() {
		t.Fatal("refilled token shed")
	}
	if b.Allow() {
		t.Fatal("bucket admitted beyond earned tokens")
	}
	// The remainder 5 ticks must carry: 5 more ticks completes the
	// next period.
	clock = 20
	if !b.Allow() {
		t.Fatal("remainder ticks were rounded away")
	}
}

func TestBucketFullDoesNotBank(t *testing.T) {
	var clock int64
	b := NewBucket(BucketOptions{Capacity: 1, RefillEvery: 10, Now: func() int64 { return clock }})
	// A long idle period at capacity must not bank future tokens.
	clock = 1000
	if !b.Allow() {
		t.Fatal("full bucket shed")
	}
	clock = 1005 // less than one refill period after draining
	if b.Allow() {
		t.Fatal("bucket banked tokens while full")
	}
}

func TestGateLimitAndRelease(t *testing.T) {
	reg := obs.NewRegistry()
	g := NewGate(GateOptions{Name: "t", Limit: 2, Obs: reg})
	if !g.TryAcquire() || !g.TryAcquire() {
		t.Fatal("acquisitions under the limit shed")
	}
	if g.TryAcquire() {
		t.Fatal("gate admitted over the limit")
	}
	if got := g.Depth(); got != 2 {
		t.Fatalf("Depth() = %d, want 2", got)
	}
	if got := g.Sheds(); got != 1 {
		t.Fatalf("Sheds() = %d, want 1", got)
	}
	g.Release()
	if !g.TryAcquire() {
		t.Fatal("gate shed after a release")
	}
	// Double release must clamp, not widen admission.
	g.Release()
	g.Release()
	g.Release()
	g.Release()
	if got := g.Depth(); got != 0 {
		t.Fatalf("Depth() after over-release = %d, want 0", got)
	}
	if !g.TryAcquire() || !g.TryAcquire() {
		t.Fatal("gate shed under the limit after over-release")
	}
	if g.TryAcquire() {
		t.Fatal("over-release widened the gate limit")
	}
}

func TestAdmissionNilSafe(t *testing.T) {
	var b *Bucket
	var g *Gate
	for i := 0; i < 100; i++ {
		if !b.Allow() {
			t.Fatal("nil bucket shed")
		}
		if !g.TryAcquire() {
			t.Fatal("nil gate shed")
		}
	}
	g.Release()
	if b.Sheds() != 0 || g.Sheds() != 0 || g.Depth() != 0 {
		t.Fatal("nil handles counted something")
	}
}
