package guard

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"testing"
)

func TestSafeRunPassthrough(t *testing.T) {
	if err := SafeRun(func() error { return nil }); err != nil {
		t.Fatalf("SafeRun(nil-returning fn) = %v", err)
	}
	want := errors.New("boom")
	if err := SafeRun(func() error { return want }); err != want {
		t.Fatalf("SafeRun passed through %v, want %v", err, want)
	}
}

func TestSafeRunRecoversPanic(t *testing.T) {
	err := SafeRun(func() error { panic("index out of range") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("SafeRun returned %T, want *PanicError", err)
	}
	if pe.Value != "index out of range" {
		t.Fatalf("PanicError.Value = %v", pe.Value)
	}
	// The message is exactly the panic value — no stacks or goroutine
	// IDs — so merged results stay byte-identical across worker counts.
	if got := pe.Error(); got != "panic: index out of range" {
		t.Fatalf("PanicError.Error() = %q", got)
	}
}

func TestSafeRunRecoversTypedPanic(t *testing.T) {
	sentinel := errors.New("deadline")
	err := SafeRun(func() error { panic(sentinel) })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("SafeRun returned %T, want *PanicError", err)
	}
	if pe.Value != sentinel {
		t.Fatalf("PanicError.Value = %v, want the sentinel", pe.Value)
	}
}

// TestCrashPointKills re-executes the test binary with the crash point
// armed and asserts the process dies with exit status 137.
func TestCrashPointKills(t *testing.T) {
	//lint:ignore detrand subprocess re-exec handshake: the env var selects helper mode, it never feeds a simulation result
	if os.Getenv("GUARD_TEST_CRASH") == "1" {
		CrashPoint("not-this-one") // a miss must not kill
		CrashPoint("test/crash-here")
		t.Fatal("unreachable: crash point did not fire")
		return
	}
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashPointKills$")
	//lint:ignore detrand subprocess re-exec handshake: the child inherits the test environment plus the crash-point arming
	cmd.Env = append(os.Environ(), "GUARD_TEST_CRASH=1", CrashPointEnv+"=test/crash-here")
	err := cmd.Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("subprocess err = %v, want an exit error", err)
	}
	if code := ee.ExitCode(); code != 137 {
		t.Fatalf("subprocess exit code = %d, want 137", code)
	}
}

// TestDisabledGuardZeroAlloc pins the contract that the disabled (nil)
// guard hot path allocates nothing.
func TestDisabledGuardZeroAlloc(t *testing.T) {
	var (
		b *Breaker
		k *Bucket
		g *Gate
		w *Watchdog
	)
	allocs := testing.AllocsPerRun(1000, func() {
		if !b.Allow() || !k.Allow() || !g.TryAcquire() {
			panic("nil guard shed")
		}
		b.Success()
		b.Failure()
		g.Release()
		if w.Tick(1) != nil {
			panic("nil watchdog expired")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled guard hot path allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkDisabledGuardHotPath(b *testing.B) {
	var (
		br *Breaker
		bk *Bucket
		g  *Gate
		w  *Watchdog
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !br.Allow() || !bk.Allow() || !g.TryAcquire() {
			b.Fatal("nil guard shed")
		}
		br.Success()
		g.Release()
		if w.Tick(1) != nil {
			b.Fatal("nil watchdog expired")
		}
	}
}

func BenchmarkEnabledBreakerAllow(b *testing.B) {
	br := NewBreaker(BreakerOptions{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		br.Allow()
		br.Success()
	}
}

func ExamplePanicError() {
	err := SafeRun(func() error { panic(42) })
	fmt.Println(err)
	// Output: panic: 42
}
