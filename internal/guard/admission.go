package guard

import (
	"sync"

	"repro/internal/obs"
)

// BucketOptions configures a token bucket. The zero value selects the
// defaults noted on each field.
type BucketOptions struct {
	// Name labels the bucket's metric series. Default "default".
	Name string
	// Capacity is the burst size (maximum stored tokens; the bucket
	// starts full). Default 8.
	Capacity int64
	// RefillEvery is how many logical ticks buy one token. Default 1.
	RefillEvery int64
	// Now supplies the logical clock. Nil selects the bucket's own
	// event clock: one tick per Allow call, so the sustained admission
	// rate is 1/RefillEvery of offered load once the burst is spent.
	Now func() int64
	// Obs, when non-nil, exports guard_bucket_admitted_total and
	// guard_bucket_shed_total under the bucket name.
	Obs *obs.Registry
}

func (o BucketOptions) withDefaults() BucketOptions {
	if o.Name == "" {
		o.Name = "default"
	}
	if o.Capacity == 0 {
		o.Capacity = 8
	}
	if o.RefillEvery == 0 {
		o.RefillEvery = 1
	}
	return o
}

// Bucket is a deterministic token-bucket admission controller on
// logical time. The nil *Bucket is the disabled guard: Allow always
// admits and counts nothing.
//
//atm:nilsafe
type Bucket struct {
	opt BucketOptions

	mu     sync.Mutex
	tokens int64
	last   int64 // logical time of the last refill accounting
	events int64 // internal event clock (used when opt.Now == nil)
	sheds  int64

	admittedC *obs.Counter
	shedC     *obs.Counter
}

// NewBucket returns a full bucket.
func NewBucket(o BucketOptions) *Bucket {
	o = o.withDefaults()
	b := &Bucket{opt: o, tokens: o.Capacity}
	if o.Obs != nil {
		b.admittedC = o.Obs.Counter("guard_bucket_admitted_total", "name", o.Name)
		b.shedC = o.Obs.Counter("guard_bucket_shed_total", "name", o.Name)
	}
	return b
}

// Allow takes one token, refilling first from elapsed logical time.
// It never blocks: a dry bucket sheds, and the caller answers its
// protocol's busy line in-band.
//
//atm:hotpath
func (b *Bucket) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var now int64
	if b.opt.Now != nil {
		now = b.opt.Now()
	} else {
		b.events++
		now = b.events
	}
	if elapsed := now - b.last; elapsed > 0 {
		earned := elapsed / b.opt.RefillEvery
		b.tokens += earned
		if b.tokens > b.opt.Capacity {
			b.tokens = b.opt.Capacity
		}
		// Keep the remainder ticks: refill accounting must not round
		// away sub-token progress or the sustained rate drifts.
		b.last += earned * b.opt.RefillEvery
		if b.tokens == b.opt.Capacity {
			b.last = now // a full bucket cannot bank future tokens
		}
	}
	if b.tokens <= 0 {
		b.sheds++
		b.shedC.Inc()
		return false
	}
	b.tokens--
	b.admittedC.Inc()
	return true
}

// Sheds returns how many requests the bucket has shed (0 on nil).
func (b *Bucket) Sheds() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sheds
}

// GateOptions configures a bounded-capacity gate. The zero value
// selects the defaults noted on each field.
type GateOptions struct {
	// Name labels the gate's metric series. Default "default".
	Name string
	// Limit bounds concurrently held slots. Default 16.
	Limit int
	// Obs, when non-nil, exports guard_gate_depth (held slots) and
	// guard_gate_shed_total under the gate name.
	Obs *obs.Registry
}

func (o GateOptions) withDefaults() GateOptions {
	if o.Name == "" {
		o.Name = "default"
	}
	if o.Limit <= 0 {
		o.Limit = 16
	}
	return o
}

// Gate is a bounded work/admission queue with explicit backpressure:
// TryAcquire never blocks — over the limit it sheds, and the caller
// answers its protocol's busy line in-band. The nil *Gate is the
// disabled guard: it always admits and counts nothing.
//
//atm:nilsafe
type Gate struct {
	opt GateOptions

	mu    sync.Mutex
	depth int
	sheds int64

	depthG *obs.Gauge
	shedC  *obs.Counter
}

// NewGate returns an empty gate.
func NewGate(o GateOptions) *Gate {
	o = o.withDefaults()
	g := &Gate{opt: o}
	if o.Obs != nil {
		g.depthG = o.Obs.Gauge("guard_gate_depth", "name", o.Name)
		g.shedC = o.Obs.Counter("guard_gate_shed_total", "name", o.Name)
	}
	return g
}

// TryAcquire claims a slot, or sheds when the gate is full. It never
// blocks.
//
//atm:hotpath
func (g *Gate) TryAcquire() bool {
	if g == nil {
		return true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.depth >= g.opt.Limit {
		g.sheds++
		g.shedC.Inc()
		return false
	}
	g.depth++
	g.depthG.Set(float64(g.depth))
	return true
}

// Release returns a slot claimed by TryAcquire. Releasing below zero
// is clamped — a double release is a bug in the caller but must not
// turn the gate into an unbounded admission hole.
//
//atm:hotpath
func (g *Gate) Release() {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.depth > 0 {
		g.depth--
	}
	g.depthG.Set(float64(g.depth))
}

// Depth returns the currently held slots (0 on nil).
func (g *Gate) Depth() int {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.depth
}

// Sheds returns how many acquisitions the gate has refused (0 on nil).
func (g *Gate) Sheds() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sheds
}
