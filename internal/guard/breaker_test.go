package guard

import (
	"fmt"
	"testing"

	"repro/internal/obs"
)

func TestBreakerStateMachine(t *testing.T) {
	reg := obs.NewRegistry()
	b := NewBreaker(BreakerOptions{
		Name:             "t",
		FailureThreshold: 3,
		OpenTicks:        4,
		HalfOpenProbes:   2,
		Obs:              reg,
	})

	if got := b.State(); got != StateClosed {
		t.Fatalf("initial state = %v, want closed", got)
	}

	// Failures below the threshold keep the breaker closed; a success
	// resets the consecutive count.
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after interleaved failures = %v, want closed", got)
	}

	// Third consecutive failure trips it open.
	b.Failure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after threshold = %v, want open", got)
	}

	// While open, requests are shed until OpenTicks of logical time
	// elapse. On the event clock each shed itself is a tick, so an
	// OpenTicks=4 window sheds exactly 3 requests before the attempt at
	// elapsed=4 is admitted as the probe.
	var shed int
	for b.State() == StateOpen {
		if b.Allow() {
			break
		}
		shed++
		if shed > 100 {
			t.Fatal("breaker never left open state")
		}
	}
	if shed != 3 {
		t.Fatalf("shed %d requests while open, want 3 (OpenTicks-1)", shed)
	}
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state after open window = %v, want half-open", got)
	}
	if got := b.Rejected(); got != 3 {
		t.Fatalf("Rejected() = %d, want 3", got)
	}

	// One probe success is not enough with HalfOpenProbes=2.
	b.Success()
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state after 1 probe = %v, want half-open", got)
	}
	b.Success()
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after 2 probes = %v, want closed", got)
	}

	// A failure in half-open re-opens immediately.
	b.Failure()
	b.Failure()
	b.Failure()
	for i := 0; i < 4; i++ {
		b.Allow()
	}
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	b.Failure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after half-open failure = %v, want open", got)
	}
}

// TestBreakerTripsExactlyAtThreshold pins the off-by-one edge: the
// breaker stays closed through FailureThreshold-1 consecutive failures
// and opens on exactly the FailureThreshold-th — not one later.
func TestBreakerTripsExactlyAtThreshold(t *testing.T) {
	const threshold = 4
	b := NewBreaker(BreakerOptions{FailureThreshold: threshold, OpenTicks: 4})
	for i := 0; i < threshold-1; i++ {
		b.Failure()
		if got := b.State(); got != StateClosed {
			t.Fatalf("state after %d failure(s) = %v, want closed", i+1, got)
		}
	}
	// A success here must clear the count: the threshold is about
	// consecutive failures, so the full budget is available again.
	b.Success()
	for i := 0; i < threshold-1; i++ {
		b.Failure()
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("state at threshold-1 after reset = %v, want closed", got)
	}
	b.Failure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state at exactly %d consecutive failures = %v, want open", threshold, got)
	}
}

// TestBreakerHalfOpenSuccessThenFailure pins the probe-reset edge: a
// half-open breaker that sees a success and then a failure re-opens
// immediately, sheds for a fresh open window, and — critically — the
// partial probe credit is forgotten, so the next half-open round still
// needs the full HalfOpenProbes consecutive successes to close.
func TestBreakerHalfOpenSuccessThenFailure(t *testing.T) {
	b := NewBreaker(BreakerOptions{FailureThreshold: 1, OpenTicks: 3, HalfOpenProbes: 2})
	toHalfOpen := func() {
		for i := 0; b.State() != StateHalfOpen; i++ {
			b.Allow()
			if i > 100 {
				t.Fatal("breaker never reached half-open")
			}
		}
	}

	b.Failure()
	toHalfOpen()
	b.Success() // one probe of the two needed
	b.Failure() // probe round fails: re-open immediately
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after success-then-failure in half-open = %v, want open", got)
	}
	// The re-trip starts a fresh open window measured from now.
	if b.Allow() {
		t.Fatal("Allow admitted immediately after a half-open re-trip")
	}

	toHalfOpen()
	// The earlier probe success must not carry over: one success is
	// still one short of HalfOpenProbes.
	b.Success()
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state after 1 fresh probe = %v, want half-open (stale probe credit leaked)", got)
	}
	b.Success()
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after full probe round = %v, want closed", got)
	}
}

func TestBreakerExternalClock(t *testing.T) {
	var clock int64
	b := NewBreaker(BreakerOptions{
		FailureThreshold: 1,
		OpenTicks:        10,
		Now:              func() int64 { return clock },
	})
	clock = 100
	b.Failure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state = %v, want open", got)
	}
	clock = 105
	if b.Allow() {
		t.Fatal("Allow admitted inside the open window")
	}
	clock = 110
	if !b.Allow() {
		t.Fatal("Allow shed after the open window elapsed")
	}
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
}

// TestBreakerHalfOpenRefailRestartsWindow drives the dc re-admission
// pattern on the logical tick clock: a probe that fails in half-open
// re-opens the breaker, the open window restarts from the NEW trip
// tick, and the next half-open round starts with zero probe credit —
// a banked success from the failed round must not count.
func TestBreakerHalfOpenRefailRestartsWindow(t *testing.T) {
	var clock int64
	b := NewBreaker(BreakerOptions{
		FailureThreshold: 1,
		OpenTicks:        10,
		HalfOpenProbes:   2,
		Now:              func() int64 { return clock },
	})
	clock = 100
	b.Failure()
	clock = 110
	if !b.Allow() {
		t.Fatal("Allow shed after the first open window elapsed")
	}
	b.Success() // one probe credit banked...
	b.Failure() // ...then the probe round fails: re-open
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after half-open failure = %v, want open", got)
	}
	// The re-opened window runs from tick 110, not the original trip
	// at tick 100.
	for _, tick := range []int64{111, 115, 119} {
		clock = tick
		if b.Allow() {
			t.Fatalf("Allow admitted at tick %d inside the restarted window (stale trip tick honored)", tick)
		}
	}
	clock = 120
	if !b.Allow() {
		t.Fatal("Allow shed after the restarted window elapsed")
	}
	// The banked success from the failed round must not survive: the
	// new half-open round needs the full probe count.
	b.Success()
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state after 1 probe success = %v, want half-open (stale probe credit survived the re-trip)", got)
	}
	b.Success()
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after full probe round = %v, want closed", got)
	}
}

func TestBreakerNilSafe(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker shed a request")
	}
	b.Success()
	b.Failure()
	if got := b.State(); got != StateClosed {
		t.Fatalf("nil breaker State() = %v, want closed", got)
	}
	if got := b.Rejected(); got != 0 {
		t.Fatalf("nil breaker Rejected() = %d, want 0", got)
	}
}

func TestStateString(t *testing.T) {
	cases := map[State]string{
		StateClosed:   "closed",
		StateOpen:     "open",
		StateHalfOpen: "half-open",
		State(42):     "invalid",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

// breakerTrace replays a byte-encoded op sequence against a fresh
// breaker and returns a deterministic trace of every observable.
func breakerTrace(ops []byte) string {
	reg := obs.NewRegistry()
	b := NewBreaker(BreakerOptions{
		Name:             "fuzz",
		FailureThreshold: 3,
		OpenTicks:        5,
		HalfOpenProbes:   2,
		Obs:              reg,
	})
	out := ""
	for _, op := range ops {
		switch op % 3 {
		case 0:
			out += fmt.Sprintf("a%v", b.Allow())
		case 1:
			b.Success()
			out += "s"
		case 2:
			b.Failure()
			out += "f"
		}
		out += b.State().String()[:1]
	}
	return out + "|" + string(reg.SnapshotJSON())
}

// FuzzGuardBreaker checks that any op sequence (a) replays to a
// byte-identical trace — the breaker is a pure function of its input
// history — and (b) never violates the state invariants.
func FuzzGuardBreaker(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 2, 2, 0, 0, 0, 0, 0, 1, 1})
	f.Add([]byte{0, 1, 2, 0, 1, 2, 0, 1, 2})
	f.Add([]byte{2, 2, 2, 2, 2, 0, 0, 0, 0, 0, 0, 1, 2, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 1024 {
			ops = ops[:1024]
		}
		t1 := breakerTrace(ops)
		t2 := breakerTrace(ops)
		if t1 != t2 {
			t.Fatalf("breaker trace not deterministic:\n%s\n%s", t1, t2)
		}

		// Invariants over a single replay.
		b := NewBreaker(BreakerOptions{FailureThreshold: 3, OpenTicks: 5, HalfOpenProbes: 2})
		rejectedWhileNotOpen := false
		for _, op := range ops {
			before := b.State()
			switch op % 3 {
			case 0:
				if !b.Allow() && before != StateOpen {
					rejectedWhileNotOpen = true
				}
			case 1:
				b.Success()
			case 2:
				b.Failure()
			}
			if s := b.State(); s != StateClosed && s != StateOpen && s != StateHalfOpen {
				t.Fatalf("invalid state %v", s)
			}
		}
		if rejectedWhileNotOpen {
			t.Fatal("breaker shed a request while not open")
		}
	})
}
