package guard

import (
	"errors"
	"testing"

	"repro/internal/obs"
)

func TestWatchdogBudget(t *testing.T) {
	reg := obs.NewRegistry()
	w := NewWatchdog(WatchdogOptions{Name: "t", Budget: 10, Obs: reg})
	if w.Expired() {
		t.Fatal("fresh watchdog already expired")
	}
	if err := w.Tick(4); err != nil {
		t.Fatalf("Tick(4) = %v within budget", err)
	}
	if err := w.Tick(6); err != nil {
		t.Fatalf("Tick(6) = %v at exactly the budget", err)
	}
	if got := w.Remaining(); got != 0 {
		t.Fatalf("Remaining() = %d, want 0", got)
	}
	if err := w.Tick(1); !errors.Is(err, ErrWatchdogExpired) {
		t.Fatalf("Tick past budget = %v, want ErrWatchdogExpired", err)
	}
	if !w.Expired() {
		t.Fatal("Expired() = false after expiry")
	}
	// Expiry is sticky.
	if err := w.Tick(0); !errors.Is(err, ErrWatchdogExpired) {
		t.Fatalf("Tick after expiry = %v, want ErrWatchdogExpired", err)
	}
}

func TestWatchdogDisabled(t *testing.T) {
	if w := NewWatchdog(WatchdogOptions{Budget: 0}); w != nil {
		t.Fatal("Budget 0 should return the nil (disabled) watchdog")
	}
	if w := NewWatchdog(WatchdogOptions{Budget: -5}); w != nil {
		t.Fatal("negative budget should return the nil watchdog")
	}
	var w *Watchdog
	if err := w.Tick(1 << 40); err != nil {
		t.Fatalf("nil watchdog Tick = %v, want nil", err)
	}
	if w.Expired() {
		t.Fatal("nil watchdog Expired() = true")
	}
	if w.Remaining() != 0 {
		t.Fatal("nil watchdog Remaining() != 0")
	}
}
