// Package guard is the process-level resilience toolkit of the
// reproduction: circuit breakers, token-bucket admission control,
// bounded-capacity gates, cooperative watchdogs, panic isolation, and
// crash-point injection. Where internal/fault makes the *devices*
// misbehave deterministically, this package keeps the *software* that
// drives them — the fleet engine's worker pool, the FSP operator
// server — inside a bounded failure envelope: a wedged job, a flood of
// connections, or a panicking worker degrades into an explicit,
// in-band, retryable error instead of a hang, a leak, or a dead
// process.
//
// Design rules, shared with internal/obs:
//
//   - Disabled is the default and costs ~nothing. Every handle (nil
//     *Breaker, nil *Bucket, nil *Gate, nil *Watchdog) admits
//     everything, counts nothing, and allocates nothing —
//     TestDisabledGuardZeroAlloc pins the disabled hot path at
//     0 allocs/op — so consumers wire guards unconditionally and
//     enable them by construction.
//   - Time is logical, never the wall clock. Breakers and buckets are
//     driven either by a caller-supplied monotone clock (Now) or by
//     their own event counter (one tick per admission decision), so a
//     guarded run replays bit-for-bit and chaos tests can assert exact
//     trip/recovery points. The package is in atmlint's detrand scope.
//   - Shedding is explicit and in-band. A guard never blocks and never
//     silently drops: callers get a boolean (or an error) and answer
//     their protocol's "busy" line themselves.
//
// Observability rides the obs plane: every primitive optionally
// resolves counters/gauges against a Registry at construction, and all
// primitives also keep plain internal tallies (Snapshot, Sheds,
// Rejected) so health endpoints work with collection disabled.
package guard

import (
	"fmt"
	"os"
	"sync"
)

// SafeRun executes fn, converting a panic into a *PanicError return.
// The pool around a panicking worker survives: the goroutine unwinds
// normally and the failure is an ordinary, comparable error value.
func SafeRun(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r}
		}
	}()
	return fn()
}

// PanicError is a recovered panic surfaced as an error. Its message
// carries only the panic value — never goroutine IDs or stack
// addresses — so a deterministic panic produces a byte-identical error
// string at every worker count.
type PanicError struct {
	// Value is the value the panic was raised with.
	Value any
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// CrashPointEnv names the environment variable that arms a crash
// point. When set, the process kills itself (exit status 137, the
// kill -9 convention) the first time the named point is reached —
// simulating a power-loss-style kill at exactly that instruction, so
// CI can prove crash-safety invariants (fsync'd manifests, resumable
// campaigns) at every dangerous window.
const CrashPointEnv = "ATM_CRASH_POINT"

// armedCrashPoint reads the armed point once. Reading the environment
// is banned in simulation packages; this single read is the one
// sanctioned exception — it selects *where to die*, never a simulation
// input, so it cannot perturb any result that survives the crash.
var armedCrashPoint = sync.OnceValue(func() string {
	//lint:ignore detrand crash-point arming selects where the process kills itself for kill-matrix CI; it never feeds a simulation result
	return os.Getenv(CrashPointEnv)
})

// CrashPoint kills the process when name is the armed crash point.
// With no point armed (the default) it is a no-op costing one atomic
// load and a string compare.
//
//atm:hotpath
func CrashPoint(name string) {
	if p := armedCrashPoint(); p != "" && p == name {
		//lint:ignore hotpath the armed branch dies one line later; allocation mid-crash is irrelevant
		fmt.Fprintf(os.Stderr, "guard: crash point %s armed — dying\n", name)
		os.Exit(137)
	}
}
