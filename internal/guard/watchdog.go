package guard

import (
	"errors"
	"sync"

	"repro/internal/obs"
)

// ErrWatchdogExpired is returned by Watchdog.Tick once the budget is
// spent: the guarded work is stuck (or unbounded) on the simulated
// axis and must be deadlined.
var ErrWatchdogExpired = errors.New("guard: watchdog budget exhausted")

// WatchdogOptions configures a Watchdog.
type WatchdogOptions struct {
	// Name labels the watchdog's metric series. Default "default".
	Name string
	// Budget is the number of logical ticks the guarded work may
	// consume. NewWatchdog with Budget <= 0 returns nil — the disabled
	// watchdog that never expires.
	Budget int64
	// Obs, when non-nil, exports guard_watchdog_expired_total under
	// the watchdog name.
	Obs *obs.Registry
}

// Watchdog deadlines stuck work on the simulated/logical time axis: a
// cooperative countdown the guarded loop ticks at each unit of
// progress (a trial, a command, an iteration). Unlike a wall-clock
// watchdog it cannot preempt — the expiry surfaces at the next tick —
// but it is exactly reproducible: the same workload expires at the
// same tick on every run and every worker count. The nil *Watchdog is
// the disabled guard: Tick always returns nil.
//
//atm:nilsafe
type Watchdog struct {
	mu        sync.Mutex
	remaining int64
	expired   bool

	expiredC *obs.Counter
}

// NewWatchdog arms a watchdog with the options' budget, or returns nil
// (never expires) when the budget is not positive.
func NewWatchdog(o WatchdogOptions) *Watchdog {
	if o.Budget <= 0 {
		return nil
	}
	if o.Name == "" {
		o.Name = "default"
	}
	w := &Watchdog{remaining: o.Budget}
	if o.Obs != nil {
		w.expiredC = o.Obs.Counter("guard_watchdog_expired_total", "name", o.Name)
	}
	return w
}

// Tick consumes n ticks of budget and reports ErrWatchdogExpired once
// the budget is spent (and on every tick thereafter).
//
//atm:hotpath
func (w *Watchdog) Tick(n int64) error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.expired {
		return ErrWatchdogExpired
	}
	w.remaining -= n
	if w.remaining < 0 {
		w.expired = true
		w.expiredC.Inc()
		return ErrWatchdogExpired
	}
	return nil
}

// Expired reports whether the budget has run out (false on nil).
func (w *Watchdog) Expired() bool {
	if w == nil {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.expired
}

// Remaining returns the unspent budget (0 on nil or after expiry).
func (w *Watchdog) Remaining() int64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.expired {
		return 0
	}
	return w.remaining
}
