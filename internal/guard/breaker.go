package guard

import (
	"sync"

	"repro/internal/obs"
)

// State is a circuit breaker's position.
type State int

// The breaker states.
const (
	// StateClosed: traffic flows; consecutive failures are counted.
	StateClosed State = iota
	// StateOpen: traffic is shed until the open window (OpenTicks of
	// logical time) elapses.
	StateOpen
	// StateHalfOpen: probe traffic flows; HalfOpenProbes consecutive
	// successes close the breaker, any failure re-opens it.
	StateHalfOpen
)

func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return "invalid"
	}
}

// BreakerOptions configures a Breaker. The zero value selects the
// defaults noted on each field.
type BreakerOptions struct {
	// Name labels the breaker's metric series. Default "default".
	Name string
	// FailureThreshold is how many consecutive failures trip the
	// breaker open. Default 5.
	FailureThreshold int
	// OpenTicks is how long (in logical ticks) the breaker stays open
	// before admitting probes. Default 8.
	OpenTicks int64
	// HalfOpenProbes is how many consecutive successes in half-open
	// close the breaker again. Default 1.
	HalfOpenProbes int
	// Now supplies the logical clock. Nil selects the breaker's own
	// event clock: one tick per Allow call, so "time" is admission
	// pressure and the schedule is deterministic with no external
	// clock at all.
	Now func() int64
	// Obs, when non-nil, exports guard_breaker_state (0 closed, 1
	// open, 2 half-open), guard_breaker_rejected_total and
	// guard_breaker_transitions_total{to=...} under the breaker name.
	Obs *obs.Registry
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.Name == "" {
		o.Name = "default"
	}
	if o.FailureThreshold == 0 {
		o.FailureThreshold = 5
	}
	if o.OpenTicks == 0 {
		o.OpenTicks = 8
	}
	if o.HalfOpenProbes == 0 {
		o.HalfOpenProbes = 1
	}
	return o
}

// Breaker is a deterministic circuit breaker (closed → open →
// half-open) driven by logical time. The nil *Breaker is the disabled
// guard: Allow always admits, Success/Failure no-op, State reports
// closed.
//
//atm:nilsafe
type Breaker struct {
	opt BreakerOptions

	mu       sync.Mutex
	state    State
	fails    int   // consecutive failures while closed
	probes   int   // consecutive successes while half-open
	openedAt int64 // logical time the breaker last opened
	events   int64 // internal event clock (used when opt.Now == nil)
	rejected int64

	rejectedC *obs.Counter
	stateG    *obs.Gauge
	toOpenC   *obs.Counter
	toHalfC   *obs.Counter
	toClosedC *obs.Counter
}

// NewBreaker returns a closed breaker.
func NewBreaker(o BreakerOptions) *Breaker {
	o = o.withDefaults()
	b := &Breaker{opt: o}
	if o.Obs != nil {
		b.rejectedC = o.Obs.Counter("guard_breaker_rejected_total", "name", o.Name)
		b.stateG = o.Obs.Gauge("guard_breaker_state", "name", o.Name)
		b.toOpenC = o.Obs.Counter("guard_breaker_transitions_total", "name", o.Name, "to", "open")
		b.toHalfC = o.Obs.Counter("guard_breaker_transitions_total", "name", o.Name, "to", "half-open")
		b.toClosedC = o.Obs.Counter("guard_breaker_transitions_total", "name", o.Name, "to", "closed")
		b.stateG.Set(float64(StateClosed))
	}
	return b
}

// now returns the current logical time, ticking the internal event
// clock when no external clock is wired. Caller holds mu.
func (b *Breaker) now() int64 {
	if b.opt.Now != nil {
		return b.opt.Now()
	}
	b.events++
	return b.events
}

// setState transitions and updates the exported gauge/counters.
// Caller holds mu.
func (b *Breaker) setState(s State) {
	if b.state == s {
		return
	}
	b.state = s
	b.stateG.Set(float64(s))
	switch s {
	case StateOpen:
		b.toOpenC.Inc()
	case StateHalfOpen:
		b.toHalfC.Inc()
	case StateClosed:
		b.toClosedC.Inc()
	}
}

// Allow reports whether a request may proceed, advancing the logical
// clock one tick (on the internal event clock) and performing the
// open → half-open transition when the open window has elapsed. A shed
// request must not reach the protected resource; the caller answers
// its protocol's busy line in-band instead.
//
//atm:hotpath
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	switch b.state {
	case StateOpen:
		if now-b.openedAt >= b.opt.OpenTicks {
			b.probes = 0
			b.setState(StateHalfOpen)
			return true
		}
		b.rejected++
		b.rejectedC.Inc()
		return false
	default:
		return true
	}
}

// Success records a successful protected call.
//
//atm:hotpath
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		b.fails = 0
	case StateHalfOpen:
		b.probes++
		if b.probes >= b.opt.HalfOpenProbes {
			b.fails = 0
			b.setState(StateClosed)
		}
	}
}

// Failure records a failed protected call, tripping the breaker when
// the consecutive-failure threshold is reached (closed) or immediately
// (half-open).
//
//atm:hotpath
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		b.fails++
		if b.fails >= b.opt.FailureThreshold {
			b.trip()
		}
	case StateHalfOpen:
		b.trip()
	}
}

// trip opens the breaker at the current logical time. Caller holds mu.
func (b *Breaker) trip() {
	b.fails = 0
	b.probes = 0
	// Do not tick the event clock here: the open window is measured in
	// admission attempts, and the trip itself is not one.
	if b.opt.Now != nil {
		b.openedAt = b.opt.Now()
	} else {
		b.openedAt = b.events
	}
	b.setState(StateOpen)
}

// State returns the breaker's position (closed on the nil breaker).
func (b *Breaker) State() State {
	if b == nil {
		return StateClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Rejected returns how many requests the breaker has shed (0 on nil).
func (b *Breaker) Rejected() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rejected
}
