// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used by every stochastic component of the simulator.
//
// Determinism matters here more than statistical sophistication: the paper's
// experiments are repeated-trial measurements whose *distributions* carry
// the insight (Fig. 7, Fig. 8), so every experiment in this repository is
// seeded and exactly reproducible. The generator is splitmix64 — tiny,
// well-distributed, and trivially splittable so that each core, CPM site
// and workload trial receives an independent stream derived from a label.
//
// math/rand would work too, but a hand-rolled splitmix keeps the streams
// stable across Go releases (math/rand's NewSource output changed meaning
// with rand/v2) and lets us derive sub-streams from strings.
package rng

import "math"

// Source is a deterministic splitmix64 generator. The zero value is a
// valid generator seeded with 0; prefer New to make seeding explicit.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source { return &Source{state: seed} }

// golden is the splitmix64 increment (2^64 / φ).
const golden = 0x9E3779B97F4A7C15

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += golden
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Split returns a new independent Source derived from the current state
// and the label. Splitting does not advance the parent stream, so the
// order in which children are created relative to parent draws does not
// change the parent's sequence.
func (s *Source) Split(label string) *Source {
	h := hashString(label)
	// Mix the parent's seed state (not its advancing position) with the
	// label hash so the same (seed, label) pair always yields the same
	// child stream.
	return New(mix(s.state^0x4E54AD1077089B93, h))
}

// SplitIndex is Split for integer labels (core index, trial number, ...).
func (s *Source) SplitIndex(label string, i int) *Source {
	h := hashString(label)
	return New(mix(s.state^0x4E54AD1077089B93, mix(h, uint64(i)+golden)))
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high-quality bits → [0,1).
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, via the Box–Muller transform.
func (s *Source) Norm(mean, stddev float64) float64 {
	// Draw until u1 is nonzero to keep Log finite.
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// TruncNorm returns a normal draw truncated to [lo, hi] by rejection,
// falling back to clamping after a bounded number of attempts so the
// call always terminates even for pathological bounds.
func (s *Source) TruncNorm(mean, stddev, lo, hi float64) float64 {
	for i := 0; i < 32; i++ {
		v := s.Norm(mean, stddev)
		if v >= lo && v <= hi {
			return v
		}
	}
	v := s.Norm(mean, stddev)
	return math.Min(math.Max(v, lo), hi)
}

// Exp returns an exponentially distributed value with the given rate λ.
// The mean of the distribution is 1/λ.
func (s *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -math.Log(u) / rate
}

// Gumbel returns a draw from a Gumbel (max-extreme-value) distribution
// with location mu and scale beta. Fast voltage-droop *tails* are extreme
// value events — the worst droop observed over a run of many cycles — so
// the failure model uses Gumbel rather than normal tails.
func (s *Source) Gumbel(mu, beta float64) float64 {
	u := s.Float64()
	//lint:ignore floatcmp exact endpoint rejection: Float64 can emit these exact values and either makes the double Log infinite
	for u == 0 || u == 1 {
		u = s.Float64()
	}
	return mu - beta*math.Log(-math.Log(u))
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// hashString is FNV-1a, inlined to avoid a hash/fnv allocation.
func hashString(label string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime
	}
	return h
}

// mix combines two 64-bit values into a well-distributed third.
func mix(a, b uint64) uint64 {
	z := a + golden + b*0x9DDFEA08EB382D69
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
