package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/64 identical draws between different seeds", same)
	}
}

func TestSplitIsStable(t *testing.T) {
	a := New(7).Split("chip")
	b := New(7).Split("chip")
	if a.Uint64() != b.Uint64() {
		t.Error("Split with same (seed,label) differs")
	}
	c := New(7).Split("core")
	d := New(7).Split("chip")
	if c.Uint64() == d.Uint64() {
		t.Error("different labels produced identical child streams")
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	want := New(9).Uint64()
	_ = a.Split("x")
	_ = a.SplitIndex("y", 3)
	if got := a.Uint64(); got != want {
		t.Errorf("parent stream advanced by splitting: got %#x want %#x", got, want)
	}
}

func TestSplitIndexDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	root := New(11)
	for i := 0; i < 100; i++ {
		v := root.SplitIndex("core", i).Uint64()
		if seen[v] {
			t.Fatalf("duplicate first draw for index %d", i)
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %g, want ≈0.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	s := New(6)
	const n = 100000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := s.Norm(10, 3)
		sum += v
		sq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("normal mean = %g, want ≈10", mean)
	}
	if math.Abs(std-3) > 0.1 {
		t.Errorf("normal stddev = %g, want ≈3", std)
	}
}

func TestTruncNormBounds(t *testing.T) {
	s := New(8)
	for i := 0; i < 5000; i++ {
		v := s.TruncNorm(0, 1, -0.5, 0.5)
		if v < -0.5 || v > 0.5 {
			t.Fatalf("TruncNorm escaped bounds: %g", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(13)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exp(2)
		if v < 0 {
			t.Fatalf("Exp returned negative %g", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Exp(2) mean = %g, want ≈0.5", mean)
	}
}

func TestGumbelLocation(t *testing.T) {
	s := New(17)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Gumbel(5, 2)
	}
	// Gumbel mean = mu + beta·γ (Euler–Mascheroni).
	want := 5 + 2*0.5772156649
	if mean := sum / n; math.Abs(mean-want) > 0.1 {
		t.Errorf("Gumbel mean = %g, want ≈%g", mean, want)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(19)
	counts := make([]int, 7)
	for i := 0; i < 7000; i++ {
		counts[s.Intn(7)]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("Intn(7) value %d drawn %d times out of 7000", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPermIsPermutation(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
