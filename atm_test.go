package atm

import (
	"io"
	"strings"
	"testing"

	"repro/internal/report"
)

// TestPublicPipeline drives the whole library through the public facade
// the way a downstream user would: machine → characterize → deploy →
// manage → evaluate.
func TestPublicPipeline(t *testing.T) {
	m := NewReferenceMachine()

	rep, err := Characterize(m, CharactOptions{})
	if err != nil {
		t.Fatalf("Characterize: %v", err)
	}
	if len(rep.Cores) != 16 {
		t.Fatalf("characterized %d cores", len(rep.Cores))
	}

	dep, err := Deploy(m, DeployOptions{})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	if dep.SpeedDifferentialMHz() < 200 {
		t.Errorf("speed differential %.0f MHz below the paper's 200", dep.SpeedDifferentialMHz())
	}

	mgr, err := NewManager(m, dep, rep)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	crit, err := WorkloadByName("squeezenet")
	if err != nil {
		t.Fatal(err)
	}
	bg, err := WorkloadByName("lu_cb")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := mgr.Evaluate(ScenarioManagedBalanced, Pair{Critical: crit, Background: bg}, 0.10)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if !ev.MeetsQoS {
		t.Errorf("balanced schedule missed QoS: %+v", ev)
	}
}

// TestSuiteRegeneratesEverything runs every experiment end to end and
// checks the artifacts render.
func TestSuiteRegeneratesEverything(t *testing.T) {
	s, err := NewReferenceSuite()
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, e := range s.Experiments() {
		a, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if a.ID != e.ID {
			t.Errorf("experiment %s produced artifact %s", e.ID, a.ID)
		}
		if len(a.Tables) == 0 {
			t.Errorf("%s: no tables", e.ID)
		}
		var sb strings.Builder
		if err := a.Render(&sb); err != nil {
			t.Fatalf("%s render: %v", e.ID, err)
		}
		if len(sb.String()) < 100 {
			t.Errorf("%s rendered suspiciously short output", e.ID)
		}
		if err := a.RenderCSV(io.Discard); err != nil {
			t.Fatalf("%s CSV render: %v", e.ID, err)
		}
		ids[e.ID] = true
	}
	// The paper's evaluation set must be covered.
	for _, want := range []string{"fig1", "fig2", "fig4b", "fig5", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12a", "fig12b", "fig14", "table1", "table2"} {
		if !ids[want] {
			t.Errorf("experiment %s missing from the suite", want)
		}
	}
	if _, err := s.RunExperiment("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestGeneratedSiliconPipeline runs the pipeline on Monte-Carlo silicon:
// the methodology must work on any chip, not just the calibrated one.
func TestGeneratedSiliconPipeline(t *testing.T) {
	profile, err := GenerateSilicon(77, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(profile)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Characterize(m, CharactOptions{Trials: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("generated-silicon report invalid: %v", err)
	}
	dep, err := Deploy(m, DeployOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Stress limits on any silicon must not exceed the thread-worst
	// characterization limits (the virus covers the worst app).
	for _, cfg := range dep.Configs {
		cr, ok := rep.Core(cfg.Core)
		if !ok {
			t.Fatalf("missing report for %s", cfg.Core)
		}
		if cfg.StressLimit > cr.ThreadWorst {
			t.Errorf("%s stress limit %d above thread-worst %d",
				cfg.Core, cfg.StressLimit, cr.ThreadWorst)
		}
	}
}

// TestWorkloadAccessors sanity-checks the facade's workload surface.
func TestWorkloadAccessors(t *testing.T) {
	if len(Workloads()) < 25 {
		t.Errorf("library has %d workloads", len(Workloads()))
	}
	if len(CriticalWorkloads()) == 0 || len(BackgroundWorkloads()) == 0 {
		t.Error("Table II roles empty")
	}
	if _, err := WorkloadByName("x264"); err != nil {
		t.Error(err)
	}
	if _, err := WorkloadByName("doom"); err == nil {
		t.Error("unknown workload accepted")
	}
	vv := VoltageVirus()
	if vv.Profile.Name != "voltage-virus" {
		t.Errorf("virus = %q", vv.Profile.Name)
	}
	if len(Fig14Pairs()) < 5 {
		t.Error("too few evaluation pairs")
	}
}

// TestReferenceTableIRow checks the published-data accessor.
func TestReferenceTableIRow(t *testing.T) {
	idle, ub, normal, worst, ok := ReferenceTableIRow("P0C3")
	if !ok || idle != 11 || ub != 10 || normal != 9 || worst != 6 {
		t.Errorf("P0C3 row = %d/%d/%d/%d ok=%v", idle, ub, normal, worst, ok)
	}
	if _, _, _, _, ok := ReferenceTableIRow("bogus"); ok {
		t.Error("bogus label accepted")
	}
}

// TestReportHelpers covers the rendering helpers the examples use.
func TestReportHelpers(t *testing.T) {
	tab := &report.Table{Title: "T", Header: []string{"a", "b"}}
	tab.AddRow("1", "2")
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"T", "a", "b", "1", "2"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if report.Pct(0.154) != "15.4%" {
		t.Errorf("Pct = %q", report.Pct(0.154))
	}
	if report.F(3.14159, 2) != "3.14" {
		t.Errorf("F = %q", report.F(3.14159, 2))
	}
}

// TestFacadeJobSimulator drives the dynamic scheduler through the
// public surface.
func TestFacadeJobSimulator(t *testing.T) {
	m := NewReferenceMachine()
	dep, err := Deploy(m, DeployOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewJobSimulator(m, dep, "P0")
	if err != nil {
		t.Fatal(err)
	}
	opts := SchedOptions{Policy: SchedManaged, HorizonSec: 30, Seed: 5}
	trace := GenerateJobTrace(opts, opts.Seed)
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	res, err := sim.Run(trace, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) != len(trace) {
		t.Errorf("completed %d of %d", len(res.Completed), len(trace))
	}
	if res.CritSpeedup <= 1 {
		t.Errorf("managed critical speedup %.3f not above static", res.CritSpeedup)
	}
}

// TestFacadeUndervolt drives the power-saving mode through the public
// surface.
func TestFacadeUndervolt(t *testing.T) {
	m := NewReferenceMachine()
	var res UndervoltResult
	res, err := m.SolveUndervolt("P0", 4200)
	if err != nil {
		t.Fatal(err)
	}
	if res.SavingsFrac() <= 0 || res.SlowestFreq < 4200 {
		t.Errorf("undervolt result implausible: %+v", res)
	}
}

// TestFacadeSchedPolicyNames pins the policy constants' names.
func TestFacadeSchedPolicyNames(t *testing.T) {
	want := map[SchedPolicy]string{
		SchedStatic:    "static",
		SchedOndemand:  "static-ondemand",
		SchedUnmanaged: "unmanaged-atm",
		SchedManaged:   "managed-atm",
	}
	for p, name := range want {
		if p.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), name)
		}
	}
}
