// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its artifact from the simulated
// platform and reports the headline quantity the paper's version of that
// table/figure carries, so `go test -bench=. -benchmem` doubles as the
// reproduction run (see EXPERIMENTS.md for paper-vs-measured numbers).
package atm

import (
	"io"
	"sync"
	"testing"

	"repro/internal/charact"
	"repro/internal/chip"
	"repro/internal/manage"
	"repro/internal/rng"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// benchSuite is the shared, lazily built experiment pipeline. Building
// it (characterization + deployment + predictor calibration) is itself
// measured by dedicated benchmarks below; the per-figure benchmarks
// reuse one instance so they measure regeneration, not setup.
var (
	benchOnce sync.Once
	benchS    *Suite
	benchErr  error
)

func suite(b *testing.B) *Suite {
	b.Helper()
	benchOnce.Do(func() {
		benchS, benchErr = NewReferenceSuite()
		if benchErr != nil {
			return
		}
		// Materialize every stage so figure benchmarks are pure.
		if _, err := benchS.Report(); err != nil {
			benchErr = err
			return
		}
		if _, err := benchS.Deployment(); err != nil {
			benchErr = err
			return
		}
		if _, err := benchS.Manager(); err != nil {
			benchErr = err
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchS
}

// benchArtifact runs one experiment per iteration and renders it to
// io.Discard (rendering is part of regeneration).
func benchArtifact(b *testing.B, id string) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := s.RunExperiment(id)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig01FrequencyBounds regenerates Fig. 1 (frequency under the
// four margin schemes) and reports the fine-tuned idle ceiling.
func BenchmarkFig01FrequencyBounds(b *testing.B) {
	s := suite(b)
	dep, err := s.Deployment()
	if err != nil {
		b.Fatal(err)
	}
	var maxIdle float64
	for _, cfg := range dep.Configs {
		if f := float64(cfg.IdleFreq); f > maxIdle {
			maxIdle = f
		}
	}
	benchArtifact(b, "fig1")
	b.ReportMetric(maxIdle, "finetuned-idle-MHz")
}

// BenchmarkFig02SqueezeNetLatency regenerates Fig. 2 and reports the
// best-schedule latency (paper: ≈68 ms).
func BenchmarkFig02SqueezeNetLatency(b *testing.B) {
	s := suite(b)
	mgr, err := s.Manager()
	if err != nil {
		b.Fatal(err)
	}
	pts, err := mgr.LatencyStudy(workload.MustByName("squeezenet"))
	if err != nil {
		b.Fatal(err)
	}
	benchArtifact(b, "fig2")
	b.ReportMetric(pts[len(pts)-1].LatencyMs, "best-latency-ms")
}

// BenchmarkFig04bPresetDelays regenerates Fig. 4b and reports the preset
// spread ratio (paper: ≈3×).
func BenchmarkFig04bPresetDelays(b *testing.B) {
	s := suite(b)
	lo, hi := 1<<30, 0
	for _, c := range s.M.Profile().AllCores() {
		if c.PresetTaps < lo {
			lo = c.PresetTaps
		}
		if c.PresetTaps > hi {
			hi = c.PresetTaps
		}
	}
	benchArtifact(b, "fig4b")
	b.ReportMetric(float64(hi)/float64(lo), "preset-spread-x")
}

// BenchmarkFig05ReductionSweep regenerates Fig. 5.
func BenchmarkFig05ReductionSweep(b *testing.B) { benchArtifact(b, "fig5") }

// BenchmarkFig07IdleLimits regenerates Fig. 7 and reports how many cores
// exceed 5 GHz at their idle limit (paper: more than half).
func BenchmarkFig07IdleLimits(b *testing.B) {
	s := suite(b)
	rep, err := s.Report()
	if err != nil {
		b.Fatal(err)
	}
	over := 0
	for _, c := range rep.Cores {
		if c.IdleFreq > 5000 {
			over++
		}
	}
	benchArtifact(b, "fig7")
	b.ReportMetric(float64(over), "cores-over-5GHz")
}

// BenchmarkTable1Limits regenerates Table I and reports the number of
// cells matching the published table (64 = exact reproduction).
func BenchmarkTable1Limits(b *testing.B) {
	s := suite(b)
	rep, err := s.Report()
	if err != nil {
		b.Fatal(err)
	}
	match := 0
	for _, row := range rep.TableI() {
		pi, pu, pn, pw, ok := ReferenceTableIRow(row.Core)
		if !ok {
			continue
		}
		if row.Idle == pi {
			match++
		}
		if row.UBench == pu {
			match++
		}
		if row.Normal == pn {
			match++
		}
		if row.Worst == pw {
			match++
		}
	}
	benchArtifact(b, "table1")
	b.ReportMetric(float64(match), "cells-matching-paper")
}

// BenchmarkFig08UBenchRollback regenerates Fig. 8 and reports the number
// of cores that need a rollback (paper: 6).
func BenchmarkFig08UBenchRollback(b *testing.B) {
	s := suite(b)
	rep, err := s.Report()
	if err != nil {
		b.Fatal(err)
	}
	n := 0
	for _, c := range rep.Cores {
		if c.UBenchLimit < c.Idle.Limit {
			n++
		}
	}
	benchArtifact(b, "fig8")
	b.ReportMetric(float64(n), "rollback-cores")
}

// BenchmarkFig09X264VsGcc regenerates Fig. 9 and reports the aggregate
// rollback ratio between x264 and gcc.
func BenchmarkFig09X264VsGcc(b *testing.B) {
	s := suite(b)
	rep, err := s.Report()
	if err != nil {
		b.Fatal(err)
	}
	var x, g float64
	for _, c := range rep.Cores {
		x += c.AppRollbackMean["x264"]
		g += c.AppRollbackMean["gcc"]
	}
	if g > 0 {
		b.ReportMetric(x/g, "x264-over-gcc-rollback")
	} else {
		b.ReportMetric(x, "x264-total-rollback")
	}
	benchArtifact(b, "fig9")
}

// BenchmarkFig10RollbackMatrix regenerates the full Fig. 10 heatmap.
func BenchmarkFig10RollbackMatrix(b *testing.B) { benchArtifact(b, "fig10") }

// BenchmarkFig11Deployment regenerates Fig. 11 and reports the exposed
// inter-core speed differential (paper: >200 MHz).
func BenchmarkFig11Deployment(b *testing.B) {
	s := suite(b)
	dep, err := s.Deployment()
	if err != nil {
		b.Fatal(err)
	}
	benchArtifact(b, "fig11")
	b.ReportMetric(dep.SpeedDifferentialMHz(), "speed-differential-MHz")
}

// BenchmarkFig12aFreqPredictor regenerates Fig. 12a and reports the mean
// Eq. 1 slope (paper: ≈2 MHz/W).
func BenchmarkFig12aFreqPredictor(b *testing.B) {
	s := suite(b)
	mgr, err := s.Manager()
	if err != nil {
		b.Fatal(err)
	}
	var sum float64
	for _, fp := range mgr.Preds.Freq {
		sum += fp.MHzPerWatt()
	}
	benchArtifact(b, "fig12a")
	b.ReportMetric(sum/float64(len(mgr.Preds.Freq)), "MHz-per-watt")
}

// BenchmarkFig12bPerfPredictor regenerates Fig. 12b and reports the
// x264-to-mcf slope ratio (compute-bound vs memory-bound separation).
func BenchmarkFig12bPerfPredictor(b *testing.B) {
	s := suite(b)
	mgr, err := s.Manager()
	if err != nil {
		b.Fatal(err)
	}
	ratio := mgr.Preds.Perf["x264"].Fit.Slope / mgr.Preds.Perf["mcf"].Fit.Slope
	benchArtifact(b, "fig12b")
	b.ReportMetric(ratio, "x264-over-mcf-slope")
}

// BenchmarkTable2Classification regenerates Table II.
func BenchmarkTable2Classification(b *testing.B) { benchArtifact(b, "table2") }

// BenchmarkFig14Management regenerates the full Fig. 14 evaluation and
// reports the managed-max average improvement (paper: ≈15.2%).
func BenchmarkFig14Management(b *testing.B) {
	s := suite(b)
	mgr, err := s.Manager()
	if err != nil {
		b.Fatal(err)
	}
	pairs := Fig14Pairs()
	var sum float64
	for _, pair := range pairs {
		ev, err := mgr.Evaluate(ScenarioManagedMax, pair, 0.10)
		if err != nil {
			b.Fatal(err)
		}
		sum += ev.Improvement()
	}
	benchArtifact(b, "fig14")
	b.ReportMetric(100*sum/float64(len(pairs)), "managed-max-pct")
}

// --- Extension studies (beyond the paper; see DESIGN.md §6) ---

// BenchmarkExtUndervolt regenerates the undervolting study and reports
// the fine-tuned idle power saving at the 4.2 GHz target.
func BenchmarkExtUndervolt(b *testing.B) {
	s := suite(b)
	dep, err := s.Deployment()
	if err != nil {
		b.Fatal(err)
	}
	m := chip.NewReference()
	for _, cfg := range dep.Configs {
		if err := m.ProgramCPM(cfg.Core, cfg.Reduction); err != nil {
			b.Fatal(err)
		}
	}
	res, err := m.SolveUndervolt("P0", 4200)
	if err != nil {
		b.Fatal(err)
	}
	benchArtifact(b, "ext-undervolt")
	b.ReportMetric(100*res.SavingsFrac(), "finetuned-savings-pct")
}

// BenchmarkExtMonteCarlo regenerates the process-corner population study.
func BenchmarkExtMonteCarlo(b *testing.B) { benchArtifact(b, "ext-montecarlo") }

// BenchmarkExtAblationLoadline regenerates the loadline sweep.
func BenchmarkExtAblationLoadline(b *testing.B) { benchArtifact(b, "ext-ablation-loadline") }

// BenchmarkExtAblationNoise regenerates the noise-tail sweep.
func BenchmarkExtAblationNoise(b *testing.B) { benchArtifact(b, "ext-ablation-noise") }

// BenchmarkExtAblationTrials regenerates the trial-count sweep.
func BenchmarkExtAblationTrials(b *testing.B) { benchArtifact(b, "ext-ablation-trials") }

// BenchmarkExtScheduler regenerates the dynamic job-stream study.
func BenchmarkExtScheduler(b *testing.B) { benchArtifact(b, "ext-scheduler") }

// BenchmarkExtCPMPrediction regenerates the counter-prediction study.
func BenchmarkExtCPMPrediction(b *testing.B) { benchArtifact(b, "ext-cpm-prediction") }

// BenchmarkExtGovernors regenerates the governor trade-off study.
func BenchmarkExtGovernors(b *testing.B) { benchArtifact(b, "ext-governors") }

// --- Platform benchmarks: the cost of the pipeline stages themselves ---

// BenchmarkSolveSteadyState measures one full-machine fixed-point solve.
func BenchmarkSolveSteadyState(b *testing.B) {
	m := chip.NewReference()
	for _, core := range m.AllCores() {
		core.SetWorkload(workload.X264)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCharacterizeServer measures the full Sec. III-B methodology
// over 16 cores.
func BenchmarkCharacterizeServer(b *testing.B) {
	m := chip.NewReference()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := charact.Characterize(m, charact.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeployServer measures the test-time stress-test procedure.
func BenchmarkDeployServer(b *testing.B) {
	m := chip.NewReference()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tuning.Deploy(m, tuning.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCalibratePredictors measures the manager's Eq. 1 + Fig. 12b
// calibration pass.
func BenchmarkCalibratePredictors(b *testing.B) {
	m := chip.NewReference()
	if _, err := tuning.Deploy(m, tuning.Options{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := manage.CalibratePredictors(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransient1kIntervals measures the cycle-approximate control
// loop stepper (8 cores × 1000 intervals).
func BenchmarkTransient1kIntervals(b *testing.B) {
	m := chip.NewReference()
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Transient("P0", 1000, 1.0, src.SplitIndex("iter", i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateSilicon measures the Monte-Carlo silicon generator.
func BenchmarkGenerateSilicon(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GenerateSilicon(uint64(i)+1, GenerateOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Workload kernel benchmarks: the executable uBench bodies ---

func BenchmarkKernelDaxpy(b *testing.B) {
	k := workload.DaxpyKernel()
	for i := 0; i < b.N; i++ {
		if err := k.Check(4096); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelStream(b *testing.B) {
	k := workload.StreamKernel()
	for i := 0; i < b.N; i++ {
		if err := k.Check(16384); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelCoremark(b *testing.B) {
	k := workload.CoremarkKernel()
	for i := 0; i < b.N; i++ {
		if err := k.Check(256); err != nil {
			b.Fatal(err)
		}
	}
}
