#!/usr/bin/env sh
# bench_fleet.sh — run the fleet benchmark group through `atmctl bench`
# and emit BENCH_fleet.json at the repository root, in the same
# atm-bench/v1 schema as BENCH_core.json and BENCH_fsp.json: canonical
# per-stage rows (name, group, iters, trials/op, allocs/op, note) plus
# one "timing" sub-object quarantining every machine-dependent number
# (cpus, ns/op, trials/sec).
#
# Usage: scripts/bench_fleet.sh [output-path] [quick|full]
#
# The default "quick" plan matches the checked-in baseline so
# `atmctl bench -quick -baseline BENCH_fleet.json` compares like for
# like; "full" runs the larger plan for human-grade numbers. The fleet
# stages are parallel, so their allocs/op is scheduling-dependent: the
# canonical rows carry -1 and the honest reading lands in timing.
set -eu

out="${1:-BENCH_fleet.json}"
plan="${2:-quick}"
cd "$(dirname "$0")/.."

case "$plan" in
quick) flags="-quick" ;;
full) flags="" ;;
*)
	echo "bench_fleet: plan must be quick or full, got '$plan'" >&2
	exit 2
	;;
esac

# shellcheck disable=SC2086 # $flags is intentionally word-split
go run ./cmd/atmctl bench -set fleet -bench fleet $flags -out "$out"
echo "bench_fleet: wrote $out ($plan plan)" >&2
