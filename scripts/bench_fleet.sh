#!/usr/bin/env sh
# bench_fleet.sh — run the internal/fleet benchmarks and emit
# BENCH_fleet.json at the repository root.
#
# Usage: scripts/bench_fleet.sh [output-path]
#
# The JSON records honest wall-clock numbers for the machine the script
# ran on, including its CPU count: the workers=8 speedup only
# materializes when the host actually has spare cores (jobs are
# CPU-bound), so "cpus" is part of the result, not an afterthought.
set -eu

out="${1:-BENCH_fleet.json}"
cd "$(dirname "$0")/.."

cpus="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkMonteCarlo|BenchmarkJobHash' \
	-benchtime 3x -count 1 ./internal/fleet/ | tee "$raw" >&2

# go test -bench lines look like:
#   BenchmarkMonteCarloSequential-8   3   123456789 ns/op   456 B/op ...
ns_of() {
	awk -v name="$1" '$1 ~ "^"name"(-[0-9]+)?$" { print $3; exit }' "$raw"
}

seq_ns="$(ns_of BenchmarkMonteCarloSequential)"
par_ns="$(ns_of BenchmarkMonteCarloWorkers8)"
cached_ns="$(ns_of BenchmarkMonteCarloCached)"
hash_ns="$(ns_of BenchmarkJobHash)"

if [ -z "$seq_ns" ] || [ -z "$par_ns" ]; then
	echo "bench_fleet: benchmark output missing expected lines" >&2
	exit 1
fi

speedup="$(awk -v s="$seq_ns" -v p="$par_ns" 'BEGIN { printf "%.2f", s/p }')"

cat >"$out" <<EOF
{
  "bench": "internal/fleet Monte-Carlo campaign (8 jobs)",
  "cpus": $cpus,
  "sequential_ns_per_op": $seq_ns,
  "workers8_ns_per_op": $par_ns,
  "cached_ns_per_op": ${cached_ns:-null},
  "job_hash_ns_per_op": ${hash_ns:-null},
  "speedup_workers8_vs_sequential": $speedup,
  "note": "jobs are CPU-bound; speedup scales with min(workers, cpus, jobs) and is ~1.0 on a single-CPU host. Output bytes are identical at every worker count."
}
EOF
echo "bench_fleet: wrote $out (cpus=$cpus, speedup=${speedup}x)" >&2
