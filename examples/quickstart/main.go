// Quickstart: build the paper-calibrated POWER7+ server, fine-tune one
// core's ATM control loop by programming its Critical Path Monitors, and
// watch the frequency gain — the core mechanism of the paper in ~60
// lines of API use.
package main

import (
	"fmt"
	"log"

	atm "repro"
)

func main() {
	// The reference machine reproduces the paper's two 8-core POWER7+
	// chips; every core starts in default ATM (~4.6 GHz at idle).
	m := atm.NewReferenceMachine()

	st, err := m.Solve()
	if err != nil {
		log.Fatal(err)
	}
	before, err := st.CoreState("P0C3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P0C3 under default ATM: %.0f MHz\n", float64(before.Freq))

	// Fine-tune: reduce P0C3's CPM inserted delay step by step and let
	// the control loop convert the revealed margin into frequency.
	core, err := m.Core("P0C3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nreduction  settled frequency")
	for r := 0; r <= 9; r++ {
		if err := m.ProgramCPM("P0C3", r); err != nil {
			log.Fatal(err)
		}
		st, err := m.Solve()
		if err != nil {
			log.Fatal(err)
		}
		cs, err := st.CoreState("P0C3")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%9d  %.0f MHz\n", r, float64(cs.Freq))
	}

	// But aggressive settings are only safe up to the core's limit:
	// probe beyond it and the run fails. The library's trial model
	// reproduces the paper's failure taxonomy.
	limit := core.Profile.DeterministicLimit(0) // idle limit
	fmt.Printf("\nP0C3 idle limit: %d steps of reduction\n", limit)

	// Restore the safe deployed configuration found by the test-time
	// stress procedure and show the final gain.
	dep, err := atm.Deploy(m, atm.DeployOptions{})
	if err != nil {
		log.Fatal(err)
	}
	cfg, _ := dep.Config("P0C3")
	fmt.Printf("deployed (stress-tested) config: reduction %d → %.0f MHz idle, %.0f MHz fully loaded\n",
		cfg.Reduction, float64(cfg.IdleFreq), float64(cfg.LoadedFreq))
	fmt.Printf("gain over the 4.2 GHz static margin: %+.1f%% (idle)\n",
		100*(float64(cfg.IdleFreq)/4200-1))
	fmt.Printf("whole-server speed differential exposed: %.0f MHz\n", dep.SpeedDifferentialMHz())
}
