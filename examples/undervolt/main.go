// Undervolt: the third ATM component the paper disables (Sec. II) —
// the off-chip voltage controller that converts reclaimed timing margin
// into power savings instead of frequency. This example shows both
// directions of the trade on the same fine-tuned silicon, and the
// slowest-core restriction that motivates the paper's choice of per-core
// overclocking.
package main

import (
	"fmt"
	"log"
	"os"

	atm "repro"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	// Deploy the fine-tuned configuration found by the stress-test
	// procedure.
	m := atm.NewReferenceMachine()
	dep, err := atm.Deploy(m, atm.DeployOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Direction 1 (the paper's): overclocking. Margin becomes
	// per-core frequency; every core rides its own silicon.
	st, err := m.Solve()
	if err != nil {
		log.Fatal(err)
	}
	var fMin, fMax float64 = 1e9, 0
	for _, cs := range st.Chips[0].Cores {
		f := float64(cs.Freq)
		if f < fMin {
			fMin = f
		}
		if f > fMax {
			fMax = f
		}
	}
	fmt.Printf("overclocking (paper's mode): cores run %.0f–%.0f MHz at full Vdd, %.1f W chip\n",
		fMin, fMax, float64(st.Chips[0].Power))

	// Direction 2: undervolting at the 4.2 GHz target. One chip-wide
	// Vdd, limited by the slowest core.
	res, err := m.SolveUndervolt("P0", 4200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("undervolting to 4.2 GHz: Vdd −%.0f mV (%.3f V on die), %.1f → %.1f W (−%s), limited by %s\n\n",
		res.VddReduction.Millivolts(), float64(res.Supply),
		float64(res.PowerBefore), float64(res.PowerAfter),
		report.Pct(res.SavingsFrac()), res.SlowestCore)

	// The same study across load levels and configurations.
	t := &report.Table{
		Title:  "Undervolting at the 4.2 GHz target",
		Header: []string{"CPM config", "load", "Vdd reduction (mV)", "savings", "limiting core"},
		Note:   "fine-tuning exposes more margin to convert; the slowest core caps the chip-wide Vdd",
	}
	for _, tuned := range []bool{false, true} {
		for _, loaded := range []bool{false, true} {
			m2 := atm.NewReferenceMachine()
			name := "default ATM"
			if tuned {
				name = "fine-tuned"
				for _, cfg := range dep.Configs {
					if err := m2.ProgramCPM(cfg.Core, cfg.Reduction); err != nil {
						log.Fatal(err)
					}
				}
			}
			load := "idle"
			if loaded {
				load = "8×daxpy"
				for _, core := range m2.Chips[0].Cores {
					core.SetWorkload(workload.Daxpy)
				}
			}
			r, err := m2.SolveUndervolt("P0", 4200)
			if err != nil {
				log.Fatal(err)
			}
			t.AddRow(name, load, report.F(r.VddReduction.Millivolts(), 0),
				report.Pct(r.SavingsFrac()), r.SlowestCore)
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("the asymmetry is the paper's point: undervolting is capped by the chip's worst core,")
	fmt.Println("while per-core overclocking lets every core exploit its own exposed speed.")
}
