// Characterize a freshly "manufactured" chip: run the paper's full
// Sec. III-B methodology (idle → uBench → realistic workloads) against
// Monte-Carlo silicon rather than the paper's reference server,
// demonstrating that the procedure — not the calibration — is what
// exposes inter-core variation.
package main

import (
	"fmt"
	"log"
	"os"

	atm "repro"
	"repro/internal/report"
)

func main() {
	seed := uint64(20260706)
	profile, err := atm.GenerateSilicon(seed, atm.GenerateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	m, err := atm.NewMachine(profile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("characterizing generated server (seed %d): 2 chips × 8 cores\n\n", seed)

	rep, err := atm.Characterize(m, atm.CharactOptions{Trials: 10})
	if err != nil {
		log.Fatal(err)
	}

	t := &report.Table{
		Title:  "ATM reconfiguration limits (generated silicon)",
		Header: []string{"core", "preset", "idle", "uBench", "thread normal", "thread worst", "idle freq (MHz)", "tight dist"},
	}
	for _, c := range rep.Cores {
		core := profile.FindCore(c.Core)
		t.AddRow(c.Core,
			fmt.Sprintf("%d", core.PresetTaps),
			fmt.Sprintf("%d", c.Idle.Limit),
			fmt.Sprintf("%d", c.UBenchLimit),
			fmt.Sprintf("%d", c.ThreadNormal),
			fmt.Sprintf("%d", c.ThreadWorst),
			report.F(float64(c.IdleFreq), 0),
			fmt.Sprintf("%v", c.Idle.Tight()))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The same structural findings as the paper emerge on fresh silicon:
	// limit ordering, robustness ranking, stressful applications.
	rank := rep.RobustnessRank()
	fmt.Printf("most vulnerable core: %s; most robust core: %s\n", rank[0], rank[len(rank)-1])

	var worstApp string
	var worstSum float64
	perApp := map[string]float64{}
	for _, c := range rep.Cores {
		for app, rb := range c.AppRollbackMean {
			perApp[app] += rb
		}
	}
	for app, sum := range perApp {
		if sum > worstSum {
			worstApp, worstSum = app, sum
		}
	}
	fmt.Printf("most ATM-stressful application on this chip: %s (total rollback %.1f steps)\n", worstApp, worstSum)
}
