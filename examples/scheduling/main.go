// Scheduling: the paper's Sec. VII management scheme in action. Deploy
// fine-tuned configurations, calibrate the Eq. 1 frequency predictors
// and per-application performance predictors, then co-locate a
// latency-critical inference task with background jobs under each
// management scenario — including the balanced mode that throttles
// co-runners just enough to guarantee a 10% QoS improvement.
package main

import (
	"fmt"
	"log"
	"os"

	atm "repro"
	"repro/internal/report"
)

func main() {
	m := atm.NewReferenceMachine()
	rep, err := atm.Characterize(m, atm.CharactOptions{})
	if err != nil {
		log.Fatal(err)
	}
	dep, err := atm.Deploy(m, atm.DeployOptions{})
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := atm.NewManager(m, dep, rep)
	if err != nil {
		log.Fatal(err)
	}

	// The calibrated predictors, the scheduler's planning inputs.
	fp := mgr.Preds.Freq["P0C0"]
	fmt.Printf("Eq. 1 predictor for P0C0: f = %.0f − %.2f·P  (R² %.4f)\n",
		fp.Fit.Intercept, fp.MHzPerWatt(), fp.Fit.R2)
	pp := mgr.Preds.Perf["squeezenet"]
	fmt.Printf("squeezenet performance slope: %.3f per GHz (R² %.4f)\n\n",
		pp.Fit.Slope*1000, pp.Fit.R2)

	crit, err := atm.WorkloadByName("squeezenet")
	if err != nil {
		log.Fatal(err)
	}
	bg, err := atm.WorkloadByName("lu_cb")
	if err != nil {
		log.Fatal(err)
	}
	pair := atm.Pair{Critical: crit, Background: bg}

	t := &report.Table{
		Title: "squeezenet co-located with lu_cb on all sibling cores",
		Header: []string{"scenario", "critical core", "freq (MHz)", "latency (ms)",
			"improvement", "background setting", "chip power (W)"},
	}
	for _, sc := range []atm.Scenario{
		atm.ScenarioStaticMargin, atm.ScenarioDefaultATM, atm.ScenarioFineTunedUnmanaged,
		atm.ScenarioManagedMax, atm.ScenarioManagedBalanced,
	} {
		ev, err := mgr.Evaluate(sc, pair, 0.10)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(sc.String(), ev.CriticalCore,
			report.F(float64(ev.CriticalFreq), 0),
			report.F(ev.CriticalLatencyMs, 1),
			report.Pct(ev.Improvement()),
			ev.BackgroundSetting,
			report.F(float64(ev.ChipPower), 1))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The balanced mode plans a power budget from the predictors; show
	// the contract it guarantees.
	ev, err := mgr.Evaluate(atm.ScenarioManagedBalanced, pair, 0.10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("balanced contract: ≥10%% improvement, planned chip-power budget %.1f W — met: %v (%.1f%%)\n",
		float64(ev.PowerBudget), ev.MeetsQoS, 100*ev.Improvement())
}
