// Jobstream: the management scheme on a *dynamic* workload. A Poisson
// stream of latency-critical inference jobs and background batch jobs
// arrives at chip P0 for two minutes; the same trace is replayed under
// the static baseline (with its stock ondemand governor), unmanaged
// fine-tuned ATM, and the paper's managed policy — showing that the
// Fig. 14 gains survive queueing, placement races and co-location churn.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	atm "repro"
	"repro/internal/report"
)

func main() {
	traceOut := flag.String("trace-out", "",
		"write the managed run's Chrome trace_event JSON (open in Perfetto) to this file")
	flag.Parse()
	m := atm.NewReferenceMachine()
	dep, err := atm.Deploy(m, atm.DeployOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := atm.NewJobSimulator(m, dep, "P0")
	if err != nil {
		log.Fatal(err)
	}

	opts := atm.SchedOptions{HorizonSec: 120, Seed: 11}
	trace := atm.GenerateJobTrace(opts, opts.Seed)
	nCrit, nBG := 0, 0
	for _, j := range trace {
		if j.Class.String() == "critical" {
			nCrit++
		} else {
			nBG++
		}
	}
	fmt.Printf("trace: %d jobs over %.0f s (%d critical, %d background)\n\n",
		len(trace), opts.HorizonSec, nCrit, nBG)

	t := &report.Table{
		Title: "Same trace, four policies",
		Header: []string{"policy", "crit mean latency (s)", "crit p95 (s)",
			"crit speedup", "energy/job (J)"},
		Note: "managed ATM: critical jobs on the fastest cores, co-runners throttled while they run",
	}
	var tr *atm.Tracer
	for _, p := range []atm.SchedPolicy{atm.SchedStatic, atm.SchedOndemand, atm.SchedUnmanaged, atm.SchedManaged} {
		o := opts
		o.Policy = p
		if *traceOut != "" && p == atm.SchedManaged {
			tr = atm.NewTracer()
			o.Trace = tr
		}
		res, err := sim.Run(trace, o)
		if err != nil {
			log.Fatal(err)
		}
		var soj []float64
		for _, r := range res.Completed {
			if r.Class.String() == "critical" {
				soj = append(soj, r.Sojourn())
			}
		}
		sort.Float64s(soj)
		p95 := soj[len(soj)*95/100]
		t.AddRow(p.String(),
			report.F(res.CritLatency.Mean, 2),
			report.F(p95, 2),
			report.F(res.CritSpeedup, 3),
			report.F(res.EnergyPerJobJ, 0))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if tr != nil {
		if err := writeTrace(*traceOut, tr); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("managed run trace written to %s (%d events; open in Perfetto)\n", *traceOut, tr.Events())
	}
	fmt.Println("the steady-state Fig. 14 ladder — static < unmanaged < managed — holds under dynamics too.")
}

// writeTrace dumps the tracer to path, surfacing write and close errors.
func writeTrace(path string, tr *atm.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}
