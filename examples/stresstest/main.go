// Stresstest: the Sec. VII-A test-time deployment procedure. Run the
// worst-case battery — power virus, ISA sweep, and the synchronized
// issue-throttle voltage virus — against every core, find the limit
// configurations, and watch the control loop ride out the virus's di/dt
// noise in a cycle-approximate transient.
package main

import (
	"fmt"
	"log"
	"os"

	atm "repro"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/workload"
)

func main() {
	m := atm.NewReferenceMachine()

	// The battery the procedure runs, in order.
	fmt.Println("test-time stress battery:")
	for _, mark := range workload.TestTimeSuite() {
		fmt.Printf("  %-13s Cdyn %.2f, stress %.2f, sync=%v\n",
			mark.Profile.Name, mark.Profile.CdynRel, mark.Profile.StressScore, mark.Synchronized)
	}
	virus := atm.VoltageVirus()
	fmt.Printf("voltage virus recipe: issue 1/%d cycles, %d SMT threads/core, synchronized\n\n",
		virus.ThrottlePeriod, virus.ThreadsPerCore)

	// Deploy at the stress-test limit, and once more with a 2-step
	// safety rollback (the vendor option of Fig. 11).
	dep, err := atm.Deploy(m, atm.DeployOptions{})
	if err != nil {
		log.Fatal(err)
	}
	m2 := atm.NewReferenceMachine()
	depSafe, err := atm.Deploy(m2, atm.DeployOptions{Rollback: 2})
	if err != nil {
		log.Fatal(err)
	}

	t := &report.Table{
		Title:  "Deployed configurations (Fig. 11)",
		Header: []string{"core", "stress limit", "idle MHz @limit", "idle MHz @rollback-2"},
		Note:   fmt.Sprintf("speed differential at the limit: %.0f MHz", dep.SpeedDifferentialMHz()),
	}
	for _, cfg := range dep.Configs {
		safe, _ := depSafe.Config(cfg.Core)
		t.AddRow(cfg.Core, fmt.Sprintf("%d", cfg.StressLimit),
			report.F(float64(cfg.IdleFreq), 0), report.F(float64(safe.IdleFreq), 0))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Verify the paper's claim on the deployed machine: thread-worst /
	// stress-limit configurations sustain the virus.
	src := rng.New(7)
	failures := 0
	for _, core := range m.AllCores() {
		for i := 0; i < 20; i++ {
			res, err := m.RunStressmark(core.Profile.Label, virus, src.SplitIndex(core.Profile.Label, i))
			if err != nil {
				log.Fatal(err)
			}
			if !res.OK() {
				failures++
			}
		}
	}
	fmt.Printf("virus re-runs at deployed configs: %d/320 failures (expected 0)\n\n", failures)

	// Transient view: the per-core DPLL loops under chip-wide daxpy
	// load with virus-grade di/dt events.
	for _, core := range m.AllCores() {
		core.SetWorkload(workload.Daxpy)
	}
	res, err := m.Transient("P0", 3000, 1.0, rng.New(99))
	if err != nil {
		log.Fatal(err)
	}
	st, err := m.Solve()
	if err != nil {
		log.Fatal(err)
	}
	cs := st.Chips[0]
	fmt.Printf("transient under full daxpy load: %d control intervals, %d margin violations handled\n",
		len(res.Samples), res.Violations)
	fmt.Printf("chip: %.1f W, %.3f V, %.1f °C (envelope ≤70 °C: %v)\n",
		float64(cs.Power), float64(cs.Supply), float64(cs.TempC), cs.InBudget)
	for i, f := range res.MeanFreq {
		fmt.Printf("  %s loop mean %.0f MHz (analytic %.0f MHz)\n",
			cs.Cores[i].Label, float64(f), float64(cs.Cores[i].Freq))
	}
}
